//! Theorem VI.1: minimum buffering for zero-bubble scheduling, plus the
//! delayed-feedback simulator that verifies it.
//!
//! The scheduler observes pipeline FIFOs through backpressure wires that are
//! up to `C` cycles stale. Theorem VI.1 (after Lu et al.) states that depth
//!
//! ```text
//! D = N + O(μ · C_max · N)
//! ```
//!
//! across the `N` pipeline FIFOs suffices to keep every pipeline busy while
//! the system is backlogged. RidgeWalker's butterfly balancer has
//! `C = 4·log2(N)` (two pipelined 2-cycle stages per level, §VI-D), giving
//! a per-pipeline FIFO depth of `1 + 4·log2(N)`.

use grw_rng::{RandomSource as _, SplitMix64};

/// Per-server FIFO depth required by Theorem VI.1: `1 + ceil(μ·C)` slots,
/// where `μ` is the per-cycle service rate and `C` the feedback delay.
pub fn required_depth_per_server(mu: f64, feedback_delay: u64) -> usize {
    assert!((0.0..=1.0).contains(&mu), "per-cycle service rate in [0,1]");
    1 + (mu * feedback_delay as f64).ceil() as usize
}

/// The scheduler-to-pipeline feedback delay of RidgeWalker's butterfly
/// fabric: `4·log2(N)` cycles (§VI-D: `2 log N` through the balancer each
/// way).
pub fn scheduler_feedback_delay(pipelines: usize) -> u64 {
    assert!(pipelines > 0, "need at least one pipeline");
    4 * log2_ceil(pipelines)
}

/// RidgeWalker's per-pipeline FIFO depth, `1 + 4·log2(N)` (§VI-D), derived
/// from Theorem VI.1 with `μ = 1` step/cycle.
pub fn ridgewalker_fifo_depth(pipelines: usize) -> usize {
    1 + scheduler_feedback_delay(pipelines) as usize
}

fn log2_ceil(n: usize) -> u64 {
    assert!(n > 0);
    (usize::BITS - (n - 1).leading_zeros()) as u64
}

/// Task-arrival regime for the feedback simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Infinite upstream backlog — the premise of Theorem VI.1.
    Backlogged,
    /// Poisson arrivals with the given expected tasks per cycle.
    Poisson(f64),
}

/// Configuration of the delayed-feedback dispatch simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackSimConfig {
    /// Number of parallel servers (pipelines) `N`.
    pub servers: usize,
    /// Per-server FIFO depth `D/N`.
    pub fifo_depth: usize,
    /// Feedback (observation) delay `C` in cycles.
    pub feedback_delay: u64,
    /// Per-cycle service completion probability `μ` (1.0 = deterministic).
    pub service_prob: f64,
    /// Arrival regime.
    pub arrival: ArrivalModel,
    /// Simulated cycles.
    pub cycles: u64,
    /// RNG seed.
    pub seed: u64,
}

impl FeedbackSimConfig {
    /// A backlogged configuration for `n` RidgeWalker pipelines using the
    /// theorem-derived depth.
    pub fn ridgewalker(n: usize) -> Self {
        Self {
            servers: n,
            fifo_depth: ridgewalker_fifo_depth(n),
            feedback_delay: scheduler_feedback_delay(n),
            service_prob: 1.0,
            arrival: ArrivalModel::Backlogged,
            cycles: 20_000,
            seed: 0,
        }
    }
}

/// Result of one feedback simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackSimReport {
    /// Fraction of server-cycles that starved while upstream work existed.
    pub bubble_ratio: f64,
    /// Tasks completed across all servers.
    pub served: u64,
    /// Served / (servers × cycles × μ): fraction of theoretical capacity.
    pub capacity_fraction: f64,
}

/// Runs the slotted-cycle dispatch simulation.
///
/// Each cycle the dispatcher may insert at most one task per server FIFO,
/// but it only sees each FIFO's occupancy as it was `C` cycles ago; to
/// avoid overflow it counts its own in-flight sends (credit-based flow
/// control, like the hardware). Each server pops one task per cycle with
/// probability μ. A *bubble* is a server-cycle where the server would have
/// served (the μ-coin came up) but its FIFO was empty while upstream work
/// existed.
///
/// # Panics
///
/// Panics on zero servers, zero depth, or μ outside `(0, 1]`.
pub fn simulate(config: &FeedbackSimConfig) -> FeedbackSimReport {
    assert!(config.servers > 0, "need at least one server");
    assert!(config.fifo_depth > 0, "need FIFO capacity");
    assert!(
        config.service_prob > 0.0 && config.service_prob <= 1.0,
        "service probability must be in (0, 1]"
    );
    let n = config.servers;
    let c = config.feedback_delay as usize;
    let mut rng = SplitMix64::new(config.seed ^ 0x5EED_F00D);
    let mut arrivals = match config.arrival {
        ArrivalModel::Backlogged => None,
        ArrivalModel::Poisson(rate) => Some(crate::processes::PoissonProcess::new(
            rate.max(1e-12),
            config.seed,
        )),
    };

    // Per-server state.
    let mut occupancy = vec![0usize; n];
    // Ring buffers of observed occupancy (delayed by C) and sends in flight.
    let mut history: Vec<Vec<usize>> = vec![vec![0; c + 1]; n];
    let mut inflight_sends = vec![0usize; n];
    let mut send_log: Vec<Vec<usize>> = vec![vec![0; c + 1]; n];

    let mut backlog: u64 = 0;
    let mut served: u64 = 0;
    let mut bubbles: u64 = 0;
    let mut service_opportunities: u64 = 0;

    for t in 0..config.cycles {
        let slot = (t as usize) % (c + 1);
        // New upstream work.
        if let Some(p) = arrivals.as_mut() {
            backlog += p.arrivals_in(1.0);
        }

        // Dispatcher phase: sees occupancy from C cycles ago plus its own
        // unacknowledged sends; round-robin over servers.
        for s in 0..n {
            let has_work = match config.arrival {
                ArrivalModel::Backlogged => true,
                ArrivalModel::Poisson(_) => backlog > 0,
            };
            if !has_work {
                break;
            }
            let observed = history[s][slot]; // occupancy at t - C
            let bound = observed + inflight_sends[s];
            if bound < config.fifo_depth {
                // Send one task to server s.
                occupancy[s] += 1;
                debug_assert!(
                    occupancy[s] <= config.fifo_depth,
                    "credit flow control must prevent overflow"
                );
                inflight_sends[s] += 1;
                send_log[s][slot] += 1;
                if matches!(config.arrival, ArrivalModel::Poisson(_)) {
                    backlog -= 1;
                }
            }
        }

        // Server phase: each server attempts one pop with probability μ.
        for fifo in occupancy.iter_mut().take(n) {
            let wants_to_serve = config.service_prob >= 1.0 || rng.next_f64() < config.service_prob;
            if !wants_to_serve {
                continue;
            }
            service_opportunities += 1;
            if *fifo > 0 {
                *fifo -= 1;
                served += 1;
            } else {
                let upstream_work = match config.arrival {
                    ArrivalModel::Backlogged => true,
                    ArrivalModel::Poisson(_) => backlog > 0,
                };
                if upstream_work {
                    bubbles += 1;
                }
            }
        }

        // Rotate the delay lines: the slot we just used now records state
        // at time t, to be observed at t + C + 1... wait, we record *after*
        // this cycle's sends/pops so the dispatcher sees a consistent
        // snapshot that is exactly C cycles stale.
        for s in 0..n {
            let next_slot = ((t + 1) as usize) % (c + 1);
            // The sends recorded `c+1` slots ago are now observable — the
            // dispatcher's credit for them is returned.
            inflight_sends[s] -= send_log[s][next_slot];
            send_log[s][next_slot] = 0;
            history[s][next_slot] = occupancy[s];
        }
    }

    let denom = (config.servers as u64 * config.cycles) as f64 * config.service_prob;
    FeedbackSimReport {
        bubble_ratio: if service_opportunities == 0 {
            0.0
        } else {
            bubbles as f64 / service_opportunities as f64
        },
        served,
        capacity_fraction: if denom == 0.0 {
            0.0
        } else {
            served as f64 / denom
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_formulas_match_the_paper() {
        // §VI-D: 16 pipelines → 8-cycle redirect latency claim comes from
        // 2·log2(16)/... the FIFO depth is 1 + 4·log2(N).
        assert_eq!(ridgewalker_fifo_depth(16), 17);
        assert_eq!(scheduler_feedback_delay(16), 16);
        assert_eq!(ridgewalker_fifo_depth(2), 5);
        assert_eq!(ridgewalker_fifo_depth(1), 1);
        assert_eq!(required_depth_per_server(1.0, 8), 9);
        assert_eq!(required_depth_per_server(0.5, 8), 5);
    }

    #[test]
    fn theorem_depth_gives_zero_bubbles_under_backlog() {
        for n in [2usize, 4, 8, 16] {
            let report = simulate(&FeedbackSimConfig::ridgewalker(n));
            assert_eq!(
                report.bubble_ratio, 0.0,
                "N={n}: theorem-sized FIFOs must not bubble"
            );
            assert!((report.capacity_fraction - 1.0).abs() < 0.01);
        }
    }

    #[test]
    fn undersized_fifos_bubble() {
        let mut cfg = FeedbackSimConfig::ridgewalker(8);
        cfg.fifo_depth = 1; // far below 1 + 4·log2(8) = 13
        let report = simulate(&cfg);
        assert!(
            report.bubble_ratio > 0.3,
            "depth-1 FIFOs with delayed feedback must starve (ratio {})",
            report.bubble_ratio
        );
    }

    #[test]
    fn bubble_ratio_decreases_with_depth() {
        let mut last = f64::INFINITY;
        for depth in [1usize, 3, 6, 13] {
            let mut cfg = FeedbackSimConfig::ridgewalker(8);
            cfg.fifo_depth = depth;
            let r = simulate(&cfg).bubble_ratio;
            assert!(r <= last + 1e-9, "depth {depth}: ratio {r} vs {last}");
            last = r;
        }
        assert_eq!(last, 0.0, "full theorem depth reaches zero bubbles");
    }

    #[test]
    fn stochastic_service_needs_extra_slack() {
        // With μ < 1 the required depth shrinks (fewer pops per window).
        let mut cfg = FeedbackSimConfig::ridgewalker(4);
        cfg.service_prob = 0.5;
        cfg.fifo_depth = required_depth_per_server(0.5, cfg.feedback_delay) + 2;
        cfg.cycles = 50_000;
        let r = simulate(&cfg);
        assert!(
            r.bubble_ratio < 0.02,
            "stochastic service at theorem depth: ratio {}",
            r.bubble_ratio
        );
    }

    #[test]
    fn light_poisson_load_has_idle_but_serves_everything() {
        let mut cfg = FeedbackSimConfig::ridgewalker(4);
        cfg.arrival = ArrivalModel::Poisson(1.0); // ρ = 0.25
        cfg.cycles = 50_000;
        let r = simulate(&cfg);
        // All arrived work is served: throughput ≈ λ·cycles.
        let expected = 1.0 * cfg.cycles as f64;
        assert!(
            (r.served as f64 - expected).abs() < 0.05 * expected,
            "served {} vs expected {expected}",
            r.served
        );
    }

    #[test]
    #[should_panic(expected = "need FIFO capacity")]
    fn zero_depth_panics() {
        let mut cfg = FeedbackSimConfig::ridgewalker(2);
        cfg.fifo_depth = 0;
        let _ = simulate(&cfg);
    }

    #[test]
    fn log2_ceil_is_correct() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(16), 4);
        assert_eq!(log2_ceil(17), 5);
    }
}
