//! Analytic `M/M/1[N]` bulk-service queue.
//!
//! States count tasks in the system. Arrivals occur at rate λ (one task);
//! the single bulk server, when busy, completes a batch at rate μ, removing
//! `min(n, N)` tasks at once. The chain is not birth–death (downward jumps
//! of size up to `N`), so the stationary distribution is computed by
//! uniformisation + power iteration on a truncated state space.

/// The `M/M/1[N]` model of the zero-bubble scheduler.
///
/// # Example
///
/// ```
/// use grw_queueing::BulkQueueModel;
///
/// let q = BulkQueueModel::new(3.0, 1.0, 4); // λ=3, μ=1, batch 4 → stable
/// assert!(q.is_stable());
/// let pi = q.stationary(256);
/// assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BulkQueueModel {
    /// Poisson arrival rate λ.
    pub lambda: f64,
    /// Exponential batch-service rate μ.
    pub mu: f64,
    /// Maximum batch size `N` (the pipeline count).
    pub batch: usize,
}

impl BulkQueueModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if a rate is not positive or `batch == 0`.
    pub fn new(lambda: f64, mu: f64, batch: usize) -> Self {
        assert!(lambda > 0.0 && mu > 0.0, "rates must be positive");
        assert!(batch > 0, "batch size must be positive");
        Self { lambda, mu, batch }
    }

    /// Offered load ρ = λ / (N·μ); the queue is stable iff ρ < 1.
    pub fn load(&self) -> f64 {
        self.lambda / (self.mu * self.batch as f64)
    }

    /// Whether the queue has a stationary distribution.
    pub fn is_stable(&self) -> bool {
        self.load() < 1.0
    }

    /// Stationary distribution over `0..truncation` tasks-in-system.
    ///
    /// Uses uniformisation: `P = I + Q/Λ` with `Λ = λ + μ`, iterated until
    /// the L1 change drops below 1e-12 (or 200k sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `truncation < batch + 1` or the model is unstable.
    pub fn stationary(&self, truncation: usize) -> Vec<f64> {
        assert!(
            truncation > self.batch,
            "truncation must exceed the batch size"
        );
        assert!(self.is_stable(), "unstable queue has no stationary law");
        let k = truncation;
        let cap = self.lambda + self.mu;
        let a = self.lambda / cap; // arrival jump probability
        let s = self.mu / cap; // service jump probability
        let mut pi = vec![0.0f64; k];
        pi[0] = 1.0;
        let mut next = vec![0.0f64; k];
        for _ in 0..200_000 {
            next.iter_mut().for_each(|x| *x = 0.0);
            for (n, &p) in pi.iter().enumerate().take(k) {
                if p == 0.0 {
                    continue;
                }
                // Arrival: n -> n+1 (reflected at the truncation boundary).
                let up = if n + 1 < k { n + 1 } else { n };
                next[up] += p * a;
                // Service: n -> n - min(n, N); state 0 self-loops.
                let down = n.saturating_sub(self.batch);
                next[down] += p * s;
            }
            let delta: f64 = pi.iter().zip(&next).map(|(x, y)| (x - y).abs()).sum();
            std::mem::swap(&mut pi, &mut next);
            if delta < 1e-12 {
                break;
            }
        }
        let total: f64 = pi.iter().sum();
        for x in &mut pi {
            *x /= total;
        }
        pi
    }

    /// P(system empty) under the stationary law.
    pub fn idle_probability(&self, truncation: usize) -> f64 {
        self.stationary(truncation)[0]
    }

    /// Server utilization: probability the bulk server is busy.
    pub fn utilization(&self, truncation: usize) -> f64 {
        1.0 - self.idle_probability(truncation)
    }

    /// Mean number of tasks in the system.
    pub fn mean_in_system(&self, truncation: usize) -> f64 {
        self.stationary(truncation)
            .iter()
            .enumerate()
            .map(|(n, p)| n as f64 * p)
            .sum()
    }

    /// Mean batch actually served per service completion,
    /// `E[min(n, N) | n > 0]`-weighted: the effective parallelism the
    /// scheduler extracts from the pipelines.
    pub fn mean_served_batch(&self, truncation: usize) -> f64 {
        let pi = self.stationary(truncation);
        let busy: f64 = pi.iter().skip(1).sum();
        if busy == 0.0 {
            return 0.0;
        }
        pi.iter()
            .enumerate()
            .skip(1)
            .map(|(n, p)| n.min(self.batch) as f64 * p)
            .sum::<f64>()
            / busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With batch = 1 the model degenerates to M/M/1, whose stationary law
    /// is geometric: π_n = (1-ρ) ρ^n.
    #[test]
    fn batch_one_matches_mm1_closed_form() {
        let q = BulkQueueModel::new(0.6, 1.0, 1);
        let pi = q.stationary(400);
        let rho: f64 = 0.6;
        for (n, &p) in pi.iter().enumerate().take(10) {
            let expect = (1.0 - rho) * rho.powi(n as i32);
            assert!((p - expect).abs() < 1e-6, "pi[{n}] = {p}, want {expect}");
        }
        assert!((q.utilization(400) - rho).abs() < 1e-6);
        // M/M/1 mean L = ρ/(1-ρ) = 1.5.
        assert!((q.mean_in_system(400) - 1.5).abs() < 1e-4);
    }

    #[test]
    fn distribution_sums_to_one() {
        let q = BulkQueueModel::new(2.5, 1.0, 4);
        let pi = q.stationary(256);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pi.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn bigger_batches_drain_the_queue() {
        let small = BulkQueueModel::new(3.0, 1.0, 4);
        let large = BulkQueueModel::new(3.0, 1.0, 16);
        assert!(
            large.mean_in_system(512) < small.mean_in_system(512),
            "larger batch should shorten the queue"
        );
    }

    #[test]
    fn heavier_load_raises_utilization() {
        let light = BulkQueueModel::new(1.0, 1.0, 8);
        let heavy = BulkQueueModel::new(7.0, 1.0, 8);
        assert!(heavy.utilization(512) > light.utilization(512));
        assert!(heavy.load() < 1.0 && heavy.is_stable());
    }

    #[test]
    fn mean_served_batch_grows_with_load() {
        let light = BulkQueueModel::new(0.5, 1.0, 8);
        let heavy = BulkQueueModel::new(7.5, 1.0, 8);
        assert!(heavy.mean_served_batch(1024) > light.mean_served_batch(1024));
        assert!(heavy.mean_served_batch(1024) <= 8.0);
    }

    #[test]
    fn instability_is_detected() {
        let q = BulkQueueModel::new(5.0, 1.0, 4);
        assert!(!q.is_stable());
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn stationary_of_unstable_queue_panics() {
        let _ = BulkQueueModel::new(5.0, 1.0, 4).stationary(64);
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn zero_rate_panics() {
        let _ = BulkQueueModel::new(0.0, 1.0, 4);
    }
}
