//! Stochastic arrival and service processes.
//!
//! The `M/M/1[N]` model assumes Poisson task injection and exponential
//! service; these generators realise both for the simulators and make the
//! assumptions testable (exponential interarrivals, Poisson counts).
//!
//! For open-loop load generation the serving benches need more than plain
//! Poisson traffic: [`ArrivalProcess`] unifies Poisson, deterministic-rate
//! and bursty (two-state on/off, an MMPP-2) arrival streams behind one
//! timestamp-producing interface, so a front-end can replay "queries arrive
//! at their timestamps" against any traffic shape.

use grw_rng::{dist, SplitMix64};

/// A Poisson arrival process with the given rate (events per unit time).
///
/// # Example
///
/// ```
/// use grw_queueing::processes::PoissonProcess;
///
/// let mut p = PoissonProcess::new(2.0, 7);
/// let t1 = p.next_arrival();
/// let t2 = p.next_arrival();
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate: f64,
    clock: f64,
    rng: SplitMix64,
}

impl PoissonProcess {
    /// Creates a process with `rate > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Self {
            rate,
            clock: 0.0,
            rng: SplitMix64::new(seed),
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Absolute time of the next arrival (monotonically increasing).
    pub fn next_arrival(&mut self) -> f64 {
        self.clock += dist::exponential(&mut self.rng, self.rate);
        self.clock
    }

    /// Number of arrivals in a window of length `dt` (restarts the count
    /// each call; used for slotted-time simulation).
    pub fn arrivals_in(&mut self, dt: f64) -> u64 {
        dist::poisson(&mut self.rng, self.rate * dt)
    }
}

/// A deterministic (constant-rate) arrival process: one arrival every
/// `1/rate` time units, the zero-variance end of the traffic spectrum.
#[derive(Debug, Clone)]
pub struct DeterministicProcess {
    interval: f64,
    clock: f64,
}

impl DeterministicProcess {
    /// Creates a process with `rate > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Self {
            interval: 1.0 / rate,
            clock: 0.0,
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        1.0 / self.interval
    }

    /// Absolute time of the next arrival (monotonically increasing).
    pub fn next_arrival(&mut self) -> f64 {
        self.clock += self.interval;
        self.clock
    }
}

/// A bursty two-state on/off arrival process (an MMPP with two phases).
///
/// While ON, arrivals are Poisson at `on_rate`; while OFF, no arrivals
/// occur. Phase durations are exponential with means `mean_on` and
/// `mean_off`, so the long-run mean rate is
/// `on_rate · mean_on / (mean_on + mean_off)`.
#[derive(Debug, Clone)]
pub struct OnOffProcess {
    on_rate: f64,
    mean_on: f64,
    mean_off: f64,
    clock: f64,
    /// Absolute end time of the current phase.
    phase_end: f64,
    on: bool,
    rng: SplitMix64,
}

impl OnOffProcess {
    /// Creates a process that starts in the ON phase at time zero.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is not positive.
    pub fn new(on_rate: f64, mean_on: f64, mean_off: f64, seed: u64) -> Self {
        assert!(on_rate > 0.0, "on-rate must be positive");
        assert!(
            mean_on > 0.0 && mean_off > 0.0,
            "phase durations must be positive"
        );
        let mut rng = SplitMix64::new(seed);
        let first_on = dist::exponential(&mut rng, 1.0 / mean_on);
        Self {
            on_rate,
            mean_on,
            mean_off,
            clock: 0.0,
            phase_end: first_on,
            on: true,
            rng,
        }
    }

    /// Long-run mean arrival rate.
    pub fn mean_rate(&self) -> f64 {
        self.on_rate * self.mean_on / (self.mean_on + self.mean_off)
    }

    /// Absolute time of the next arrival (monotonically increasing).
    pub fn next_arrival(&mut self) -> f64 {
        loop {
            if !self.on {
                // Nothing arrives while OFF: skip straight to the next ON
                // phase.
                self.clock = self.phase_end;
                self.on = true;
                self.phase_end = self.clock + dist::exponential(&mut self.rng, 1.0 / self.mean_on);
            }
            let candidate = self.clock + dist::exponential(&mut self.rng, self.on_rate);
            if candidate <= self.phase_end {
                self.clock = candidate;
                return candidate;
            }
            // The ON phase expired before the candidate arrival: enter OFF.
            self.clock = self.phase_end;
            self.on = false;
            self.phase_end = self.clock + dist::exponential(&mut self.rng, 1.0 / self.mean_off);
        }
    }
}

/// A unified open-loop arrival stream: Poisson, deterministic-rate or
/// bursty on/off, all producing monotonically increasing absolute
/// timestamps.
///
/// # Example
///
/// ```
/// use grw_queueing::processes::ArrivalProcess;
///
/// let mut p = ArrivalProcess::bursty(2.0, 8.0, 11);
/// assert!((p.mean_rate() - 2.0).abs() < 1e-12);
/// let t1 = p.next_arrival();
/// let t2 = p.next_arrival();
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Memoryless arrivals (exponential interarrivals).
    Poisson(PoissonProcess),
    /// Constant-rate arrivals (zero variance).
    Deterministic(DeterministicProcess),
    /// Two-state on/off bursts (MMPP-2).
    Bursty(OnOffProcess),
}

impl ArrivalProcess {
    /// Mean number of arrivals per ON burst used by [`Self::bursty`].
    pub const BURST_MEAN_ARRIVALS: f64 = 16.0;

    /// Poisson arrivals at `rate`.
    pub fn poisson(rate: f64, seed: u64) -> Self {
        ArrivalProcess::Poisson(PoissonProcess::new(rate, seed))
    }

    /// Deterministic arrivals at `rate`.
    pub fn deterministic(rate: f64) -> Self {
        ArrivalProcess::Deterministic(DeterministicProcess::new(rate))
    }

    /// Bursty arrivals with long-run mean `rate`: ON phases run at
    /// `burstiness × rate` (about [`Self::BURST_MEAN_ARRIVALS`] arrivals
    /// per burst), separated by OFF phases sized so the mean holds.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive or `burstiness <= 1`.
    pub fn bursty(rate: f64, burstiness: f64, seed: u64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        assert!(burstiness > 1.0, "burstiness must exceed 1");
        let on_rate = rate * burstiness;
        let mean_on = Self::BURST_MEAN_ARRIVALS / on_rate;
        let mean_off = mean_on * (burstiness - 1.0);
        ArrivalProcess::Bursty(OnOffProcess::new(on_rate, mean_on, mean_off, seed))
    }

    /// Long-run mean arrival rate.
    pub fn mean_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson(p) => p.rate(),
            ArrivalProcess::Deterministic(d) => d.rate(),
            ArrivalProcess::Bursty(b) => b.mean_rate(),
        }
    }

    /// Absolute time of the next arrival (monotonically increasing).
    pub fn next_arrival(&mut self) -> f64 {
        match self {
            ArrivalProcess::Poisson(p) => p.next_arrival(),
            ArrivalProcess::Deterministic(d) => d.next_arrival(),
            ArrivalProcess::Bursty(b) => b.next_arrival(),
        }
    }

    /// The next `n` arrival timestamps.
    pub fn take(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_arrival()).collect()
    }
}

/// An exponential service-time sampler with rate μ.
#[derive(Debug, Clone)]
pub struct ExponentialService {
    mu: f64,
    rng: SplitMix64,
}

impl ExponentialService {
    /// Creates a sampler with `mu > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `mu` is not positive.
    pub fn new(mu: f64, seed: u64) -> Self {
        assert!(mu > 0.0, "service rate must be positive");
        Self {
            mu,
            rng: SplitMix64::new(seed),
        }
    }

    /// Samples one service duration.
    pub fn next_service(&mut self) -> f64 {
        dist::exponential(&mut self.rng, self.mu)
    }

    /// Per-cycle completion probability of the discretised (geometric)
    /// service used by the slotted simulator: `1 - exp(-mu)` per unit slot.
    pub fn per_cycle_probability(&self) -> f64 {
        1.0 - (-self.mu).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interarrival_mean_is_inverse_rate() {
        let mut p = PoissonProcess::new(4.0, 1);
        let n = 40_000;
        let mut prev = 0.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let t = p.next_arrival();
            sum += t - prev;
            prev = t;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean gap {mean}");
    }

    #[test]
    fn windowed_counts_match_rate() {
        let mut p = PoissonProcess::new(3.0, 2);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| p.arrivals_in(1.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean count {mean}");
    }

    #[test]
    fn service_mean_is_inverse_mu() {
        let mut s = ExponentialService::new(2.0, 3);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| s.next_service()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean service {mean}");
    }

    #[test]
    fn per_cycle_probability_is_consistent() {
        let s = ExponentialService::new(1.0, 0);
        let p = s.per_cycle_probability();
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_process_panics() {
        let _ = PoissonProcess::new(0.0, 0);
    }

    #[test]
    fn deterministic_process_is_exactly_periodic() {
        let mut d = DeterministicProcess::new(4.0);
        assert_eq!(d.rate(), 4.0);
        let times = [d.next_arrival(), d.next_arrival(), d.next_arrival()];
        assert!((times[0] - 0.25).abs() < 1e-12);
        assert!((times[1] - 0.50).abs() < 1e-12);
        assert!((times[2] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bursty_mean_rate_matches_target() {
        let mut p = ArrivalProcess::bursty(3.0, 10.0, 5);
        assert!((p.mean_rate() - 3.0).abs() < 1e-12);
        let n = 60_000;
        let last = p.take(n).pop().unwrap();
        let empirical = n as f64 / last;
        assert!(
            (empirical - 3.0).abs() / 3.0 < 0.05,
            "empirical bursty rate {empirical}"
        );
    }

    #[test]
    fn bursty_arrivals_cluster_more_than_poisson() {
        // Squared coefficient of variation of interarrivals: 1 for Poisson,
        // > 1 for an on/off burst process.
        let cv2 = |mut p: ArrivalProcess| {
            let times = p.take(40_000);
            let mut prev = 0.0;
            let gaps: Vec<f64> = times
                .iter()
                .map(|&t| {
                    let g = t - prev;
                    prev = t;
                    g
                })
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let poisson = cv2(ArrivalProcess::poisson(2.0, 9));
        let bursty = cv2(ArrivalProcess::bursty(2.0, 10.0, 9));
        assert!((poisson - 1.0).abs() < 0.1, "poisson cv2 {poisson}");
        assert!(bursty > 2.0, "bursty cv2 {bursty} should exceed poisson");
    }

    #[test]
    fn every_shape_produces_increasing_timestamps() {
        for mut p in [
            ArrivalProcess::poisson(5.0, 1),
            ArrivalProcess::deterministic(5.0),
            ArrivalProcess::bursty(5.0, 4.0, 1),
        ] {
            let mut prev = 0.0;
            for _ in 0..1_000 {
                let t = p.next_arrival();
                assert!(t > prev, "timestamps must strictly increase");
                prev = t;
            }
        }
    }

    #[test]
    #[should_panic(expected = "burstiness must exceed 1")]
    fn bursty_requires_burstiness_above_one() {
        let _ = ArrivalProcess::bursty(1.0, 1.0, 0);
    }
}
