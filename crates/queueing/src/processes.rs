//! Stochastic arrival and service processes.
//!
//! The `M/M/1[N]` model assumes Poisson task injection and exponential
//! service; these generators realise both for the simulators and make the
//! assumptions testable (exponential interarrivals, Poisson counts).

use grw_rng::{dist, SplitMix64};

/// A Poisson arrival process with the given rate (events per unit time).
///
/// # Example
///
/// ```
/// use grw_queueing::processes::PoissonProcess;
///
/// let mut p = PoissonProcess::new(2.0, 7);
/// let t1 = p.next_arrival();
/// let t2 = p.next_arrival();
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate: f64,
    clock: f64,
    rng: SplitMix64,
}

impl PoissonProcess {
    /// Creates a process with `rate > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Self {
            rate,
            clock: 0.0,
            rng: SplitMix64::new(seed),
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Absolute time of the next arrival (monotonically increasing).
    pub fn next_arrival(&mut self) -> f64 {
        self.clock += dist::exponential(&mut self.rng, self.rate);
        self.clock
    }

    /// Number of arrivals in a window of length `dt` (restarts the count
    /// each call; used for slotted-time simulation).
    pub fn arrivals_in(&mut self, dt: f64) -> u64 {
        dist::poisson(&mut self.rng, self.rate * dt)
    }
}

/// An exponential service-time sampler with rate μ.
#[derive(Debug, Clone)]
pub struct ExponentialService {
    mu: f64,
    rng: SplitMix64,
}

impl ExponentialService {
    /// Creates a sampler with `mu > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `mu` is not positive.
    pub fn new(mu: f64, seed: u64) -> Self {
        assert!(mu > 0.0, "service rate must be positive");
        Self {
            mu,
            rng: SplitMix64::new(seed),
        }
    }

    /// Samples one service duration.
    pub fn next_service(&mut self) -> f64 {
        dist::exponential(&mut self.rng, self.mu)
    }

    /// Per-cycle completion probability of the discretised (geometric)
    /// service used by the slotted simulator: `1 - exp(-mu)` per unit slot.
    pub fn per_cycle_probability(&self) -> f64 {
        1.0 - (-self.mu).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interarrival_mean_is_inverse_rate() {
        let mut p = PoissonProcess::new(4.0, 1);
        let n = 40_000;
        let mut prev = 0.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let t = p.next_arrival();
            sum += t - prev;
            prev = t;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean gap {mean}");
    }

    #[test]
    fn windowed_counts_match_rate() {
        let mut p = PoissonProcess::new(3.0, 2);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| p.arrivals_in(1.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean count {mean}");
    }

    #[test]
    fn service_mean_is_inverse_mu() {
        let mut s = ExponentialService::new(2.0, 3);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| s.next_service()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean service {mean}");
    }

    #[test]
    fn per_cycle_probability_is_consistent() {
        let s = ExponentialService::new(1.0, 0);
        let p = s.per_cycle_probability();
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_process_panics() {
        let _ = PoissonProcess::new(0.0, 0);
    }
}
