//! Latency provenance: per-query **span reconstruction** and exact,
//! additive **phase attribution** on top of the deterministic event
//! journal.
//!
//! A delivered query leaves three stamps in the trace — admission
//! (`query_admitted`), delivery (`query_delivered`, which carries its
//! own arrival and flush ticks), and, when a sink is attached, the sink
//! accept (`sink_accepted`). [`SpanSet::reconstruct`] joins them in
//! canonical `(tick, shard, seq)` order into one [`QuerySpan`] per
//! delivered query and decomposes its end-to-end latency into phases
//! that **sum exactly**:
//!
//! ```text
//! batch_wait      = flushed   − arrival      (micro-batcher residency)
//! backend_service = completed − flushed      (backend-resident)
//! sink_wait       = accepted  − completed    (sink backpressure; 0 without a sink)
//! ─────────────────────────────────────────
//! total           = end − arrival            (end = accepted, or completed)
//! ```
//!
//! The sum telescopes, so `sum(phases) == total` holds *exactly* for
//! every span — not approximately, not modulo rounding — and because the
//! canonical trace is byte-identical across the deterministic and
//! threaded drivers, so is every reconstructed span. That identity is
//! what makes a phase-level diff ([`SpanSet::summary`] compared across
//! two traces, see the `obsdiff` bin) a real behavioural explanation
//! rather than scheduler noise.
//!
//! Everything here is a pure function of a trace: feed it a live
//! journal (`Obs::journal()`) or a parsed on-disk `TRACE_*.jsonl`
//! ([`parse_trace`]).

use crate::journal::{jsonl_num, Event, EventKind};

/// Phase index order used everywhere in this module: the names for
/// [`QuerySpan::phases`], [`PhaseSummary::phase_sums`], and the
/// per-phase metric families in the registry.
pub const PHASE_NAMES: [&str; 3] = ["batch-wait", "backend-service", "sink-wait"];

/// One delivered query's reconstructed span: every stamp of its
/// lifetime plus the fleet events that intersected it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpan {
    /// Owning tenant.
    pub tenant: u16,
    /// Tenant-local query id.
    pub query: u64,
    /// Shard that delivered the walk.
    pub shard: u32,
    /// Admission tick.
    pub arrival_tick: u64,
    /// Micro-batch flush tick.
    pub flushed_tick: u64,
    /// Walk-completion (delivery) tick.
    pub completed_tick: u64,
    /// Sink-accept tick, when a sink consumed the walk.
    pub accepted_tick: Option<u64>,
    /// Steps in the delivered walk.
    pub steps: u32,
    /// Router migrations of this tenant whose tick falls inside
    /// `[arrival, end]` — the span crossed a re-binding.
    pub migrations: u32,
    /// Fleet scale events (append / retire-begun / retired) whose tick
    /// falls inside `[arrival, end]`.
    pub scale_events: u32,
}

impl QuerySpan {
    /// The span's terminus: the sink-accept tick when a sink consumed
    /// the walk, else the completion tick.
    pub fn end_tick(&self) -> u64 {
        self.accepted_tick.unwrap_or(self.completed_tick)
    }

    /// End-to-end latency in ticks.
    pub fn total(&self) -> u64 {
        self.end_tick() - self.arrival_tick
    }

    /// The additive phase decomposition, in [`PHASE_NAMES`] order.
    /// Invariant (property-tested across both drivers):
    /// `phases().sum() == total()` exactly.
    pub fn phases(&self) -> [u64; 3] {
        [
            self.flushed_tick - self.arrival_tick,
            self.completed_tick - self.flushed_tick,
            self.accepted_tick
                .map(|a| a - self.completed_tick)
                .unwrap_or(0),
        ]
    }

    /// Renders the span as a one-line timeline, the exemplar format
    /// `obsdump` prints for the percentile worst offenders:
    ///
    /// ```text
    /// admitted @120 ──(batch-wait 2)── flushed @122 ──(backend 5)── completed @127 ──(sink-wait 2)── accepted @129
    /// ```
    pub fn timeline(&self) -> String {
        let [bw, be, sw] = self.phases();
        let mut out = format!(
            "admitted @{} ──(batch-wait {bw})── flushed @{} ──(backend {be})── completed @{}",
            self.arrival_tick, self.flushed_tick, self.completed_tick
        );
        if let Some(a) = self.accepted_tick {
            out.push_str(&format!(" ──(sink-wait {sw})── accepted @{a}"));
        }
        out
    }
}

/// Aggregate phase statistics over a set of spans — the unit `obsdiff`
/// compares between two traces. All tick-valued aggregates are exact
/// integer sums; means are derived.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseSummary {
    /// Spans aggregated.
    pub count: u64,
    /// Per-phase tick sums, in [`PHASE_NAMES`] order.
    pub phase_sums: [u64; 3],
    /// Per-phase p99 (nearest-rank), in [`PHASE_NAMES`] order.
    pub phase_p99: [u64; 3],
    /// Sum of end-to-end latencies. Equals the sum of `phase_sums` —
    /// the aggregate face of the per-span exact-sum invariant.
    pub total_sum: u64,
    /// p99 end-to-end latency (nearest-rank).
    pub total_p99: u64,
    /// Worst end-to-end latency.
    pub total_max: u64,
}

impl PhaseSummary {
    /// Mean ticks spent in phase `i` ([`PHASE_NAMES`] order); 0 when
    /// empty.
    pub fn phase_mean(&self, i: usize) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.phase_sums[i] as f64 / self.count as f64
        }
    }

    /// Mean end-to-end latency; 0 when empty. Because the per-span
    /// phases sum exactly, this equals the sum of the phase means — a
    /// latency delta between two summaries therefore decomposes
    /// *additively* into per-phase mean deltas.
    pub fn total_mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_sum as f64 / self.count as f64
        }
    }

    /// Renders the summary as the flat one-line JSON object the bench
    /// records embed as their `"phases"` block. Exact integer sums (not
    /// derived means) are emitted so [`from_flat_json`](Self::from_flat_json)
    /// round-trips losslessly and `obsdiff` can attribute a regression
    /// between two records without their traces.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"count\": {}, ",
                "\"batch_wait_sum\": {}, \"batch_wait_p99\": {}, ",
                "\"backend_sum\": {}, \"backend_p99\": {}, ",
                "\"sink_wait_sum\": {}, \"sink_wait_p99\": {}, ",
                "\"total_sum\": {}, \"total_p99\": {}, \"total_max\": {}}}"
            ),
            self.count,
            self.phase_sums[0],
            self.phase_p99[0],
            self.phase_sums[1],
            self.phase_p99[1],
            self.phase_sums[2],
            self.phase_p99[2],
            self.total_sum,
            self.total_p99,
            self.total_max,
        )
    }

    /// Parses a `"phases"` block produced by [`to_json`](Self::to_json)
    /// (pass the braced object substring). Returns `None` when any field
    /// is missing — a record without a phases block diffs as absent, not
    /// as zeros.
    pub fn from_flat_json(obj: &str) -> Option<Self> {
        let num = |k: &str| jsonl_num(obj, k).map(|v| v as u64);
        Some(Self {
            count: num("count")?,
            phase_sums: [
                num("batch_wait_sum")?,
                num("backend_sum")?,
                num("sink_wait_sum")?,
            ],
            phase_p99: [
                num("batch_wait_p99")?,
                num("backend_p99")?,
                num("sink_wait_p99")?,
            ],
            total_sum: num("total_sum")?,
            total_p99: num("total_p99")?,
            total_max: num("total_max")?,
        })
    }
}

/// Nearest-rank percentile of a sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The spans reconstructed from one trace, plus everything the
/// reconstruction noticed about the trace's completeness.
#[derive(Debug, Clone, Default)]
pub struct SpanSet {
    /// Reconstructed spans, in canonical (delivery) order.
    pub spans: Vec<QuerySpan>,
    /// Events the journal dropped to its capacity bound before this
    /// trace was exported (from the `journal_overflow` meta line or
    /// `Obs::dropped`). Non-zero means every breakdown here is a
    /// **lower bound**: early spans are missing entirely.
    pub dropped: u64,
    /// `sink_accepted` events that matched no delivered span — only
    /// possible when the matching `query_delivered` was dropped by an
    /// overflowing journal.
    pub unmatched_accepts: u64,
}

impl SpanSet {
    /// Reconstructs spans from events in canonical `(tick, shard, seq)`
    /// order (sort first if the source is not already canonical —
    /// `Obs::journal()` and `parse_trace` both are).
    ///
    /// Join rules: a `query_delivered` event *opens* a span (it carries
    /// its own arrival and flush stamps); a `sink_accepted` event
    /// *closes* the earliest-open span with the same
    /// `(tenant, query, arrival, completed)` key — FIFO matching in
    /// canonical order, so re-used tenant-local ids cannot cross-wire.
    /// Migration and scale events annotate every span whose lifetime
    /// `[arrival, end]` contains their tick.
    pub fn reconstruct(events: &[Event]) -> Self {
        let mut spans: Vec<QuerySpan> = Vec::new();
        // (tenant, query, arrival, completed) -> indices of spans still
        // awaiting their sink accept, in open order.
        let mut open: std::collections::HashMap<
            (u16, u64, u64, u64),
            std::collections::VecDeque<usize>,
        > = std::collections::HashMap::new();
        let mut unmatched_accepts = 0u64;
        // (tick, tenant) per migration; tick per scale event.
        let mut migrations: Vec<(u64, u16)> = Vec::new();
        let mut scale_ticks: Vec<u64> = Vec::new();
        for e in events {
            match &e.kind {
                EventKind::QueryDelivered {
                    tenant,
                    query,
                    arrival_tick,
                    flushed_tick,
                    steps,
                } => {
                    let idx = spans.len();
                    spans.push(QuerySpan {
                        tenant: *tenant,
                        query: *query,
                        shard: e.shard,
                        arrival_tick: *arrival_tick,
                        flushed_tick: *flushed_tick,
                        completed_tick: e.tick,
                        accepted_tick: None,
                        steps: *steps,
                        migrations: 0,
                        scale_events: 0,
                    });
                    open.entry((*tenant, *query, *arrival_tick, e.tick))
                        .or_default()
                        .push_back(idx);
                }
                EventKind::SinkAccepted {
                    tenant,
                    query,
                    arrival_tick,
                    completed_tick,
                } => {
                    match open
                        .get_mut(&(*tenant, *query, *arrival_tick, *completed_tick))
                        .and_then(|q| q.pop_front())
                    {
                        Some(idx) => spans[idx].accepted_tick = Some(e.tick),
                        None => unmatched_accepts += 1,
                    }
                }
                EventKind::Migration { tenant, .. } => migrations.push((e.tick, *tenant)),
                EventKind::ShardAppended { .. }
                | EventKind::RetireBegun
                | EventKind::ShardRetired { .. } => scale_ticks.push(e.tick),
                _ => {}
            }
        }
        for s in &mut spans {
            let (lo, hi) = (s.arrival_tick, s.end_tick());
            s.migrations = migrations
                .iter()
                .filter(|(t, ten)| *ten == s.tenant && (lo..=hi).contains(t))
                .count() as u32;
            s.scale_events = scale_ticks
                .iter()
                .filter(|t| (lo..=hi).contains(*t))
                .count() as u32;
        }
        Self {
            spans,
            dropped: 0,
            unmatched_accepts,
        }
    }

    /// Reconstructs from a canonical JSONL trace string, honouring its
    /// `journal_overflow` meta line.
    pub fn from_trace(trace: &str) -> Self {
        let (events, dropped) = parse_trace(trace);
        let mut set = Self::reconstruct(&events);
        set.dropped = dropped;
        set
    }

    /// Aggregate phase statistics over every span (or a filtered
    /// subset via [`summary_of`](Self::summary_of)).
    pub fn summary(&self) -> PhaseSummary {
        Self::summarize(self.spans.iter())
    }

    /// Aggregate phase statistics over the spans matching `keep`.
    pub fn summary_of<F: Fn(&QuerySpan) -> bool>(&self, keep: F) -> PhaseSummary {
        Self::summarize(self.spans.iter().filter(|s| keep(s)))
    }

    fn summarize<'a, I: Iterator<Item = &'a QuerySpan>>(spans: I) -> PhaseSummary {
        let mut out = PhaseSummary::default();
        let mut phase_vals: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut totals: Vec<u64> = Vec::new();
        for s in spans {
            out.count += 1;
            let phases = s.phases();
            for i in 0..3 {
                out.phase_sums[i] += phases[i];
                phase_vals[i].push(phases[i]);
            }
            let t = s.total();
            out.total_sum += t;
            totals.push(t);
        }
        for (i, vals) in phase_vals.iter_mut().enumerate() {
            vals.sort_unstable();
            out.phase_p99[i] = percentile(vals, 99.0);
        }
        totals.sort_unstable();
        out.total_p99 = percentile(&totals, 99.0);
        out.total_max = totals.last().copied().unwrap_or(0);
        out
    }

    /// Tenants present, ascending.
    pub fn tenants(&self) -> Vec<u16> {
        let mut t: Vec<u16> = self.spans.iter().map(|s| s.tenant).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// Shards present, ascending.
    pub fn shards(&self) -> Vec<u32> {
        let mut s: Vec<u32> = self.spans.iter().map(|s| s.shard).collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// The percentile exemplars: the *actual* spans sitting at p50, p99
    /// and max end-to-end latency (nearest-rank; ties broken by
    /// canonical order, so the choice is deterministic). Labels are
    /// `"p50"`, `"p99"`, `"max"`; duplicates collapse, so a small set
    /// may return fewer than three.
    pub fn exemplars(&self) -> Vec<(&'static str, &QuerySpan)> {
        if self.spans.is_empty() {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..self.spans.len()).collect();
        order.sort_by_key(|&i| (self.spans[i].total(), i));
        let pick = |p: f64| {
            let rank = ((p / 100.0) * order.len() as f64).ceil() as usize;
            order[rank.clamp(1, order.len()) - 1]
        };
        let mut out: Vec<(&'static str, usize)> = Vec::new();
        for (label, idx) in [
            ("p50", pick(50.0)),
            ("p99", pick(99.0)),
            ("max", *order.last().unwrap()),
        ] {
            if !out.iter().any(|(_, i)| *i == idx) {
                out.push((label, idx));
            }
        }
        out.into_iter().map(|(l, i)| (l, &self.spans[i])).collect()
    }
}

/// A phase-attributed comparison of two runs — the engine behind the
/// `obsdiff` bin and the perf gate's regression explanation.
///
/// Built either from two full traces ([`TraceDiff::from_traces`], which
/// also diffs the event census) or from two bench records' `"phases"`
/// blocks ([`TraceDiff::from_summaries`], no census). Because every
/// span's phases sum *exactly* to its end-to-end latency, the per-phase
/// mean deltas here sum exactly to the end-to-end mean delta: the
/// attribution is additive accounting, not a heuristic.
#[derive(Debug, Clone, Default)]
pub struct TraceDiff {
    /// Phase summary of the baseline side.
    pub baseline: PhaseSummary,
    /// Phase summary of the current side.
    pub current: PhaseSummary,
    /// Events the baseline journal dropped (its breakdown is a lower
    /// bound when non-zero).
    pub baseline_dropped: u64,
    /// Events the current journal dropped.
    pub current_dropped: u64,
    /// Event census (kind tag → count) per side; empty when built from
    /// bench records rather than traces.
    pub baseline_census: std::collections::BTreeMap<&'static str, u64>,
    /// Current side of the census.
    pub current_census: std::collections::BTreeMap<&'static str, u64>,
}

impl TraceDiff {
    /// Compares two canonical JSONL traces: span-level phase summaries
    /// plus the full event census.
    pub fn from_traces(baseline: &str, current: &str) -> Self {
        let census = |events: &[Event]| {
            let mut c: std::collections::BTreeMap<&'static str, u64> =
                std::collections::BTreeMap::new();
            for e in events {
                *c.entry(e.kind.tag()).or_default() += 1;
            }
            c
        };
        let (base_events, base_dropped) = parse_trace(baseline);
        let (cur_events, cur_dropped) = parse_trace(current);
        Self {
            baseline: SpanSet::reconstruct(&base_events).summary(),
            current: SpanSet::reconstruct(&cur_events).summary(),
            baseline_dropped: base_dropped,
            current_dropped: cur_dropped,
            baseline_census: census(&base_events),
            current_census: census(&cur_events),
        }
    }

    /// Compares two already-aggregated phase summaries (the `"phases"`
    /// blocks of two bench records). No event census.
    pub fn from_summaries(baseline: PhaseSummary, current: PhaseSummary) -> Self {
        Self {
            baseline,
            current,
            ..Self::default()
        }
    }

    /// End-to-end mean latency delta (current − baseline), in ticks.
    pub fn delta_mean(&self) -> f64 {
        self.current.total_mean() - self.baseline.total_mean()
    }

    /// Per-phase mean deltas in [`PHASE_NAMES`] order. Sums exactly to
    /// [`delta_mean`](Self::delta_mean).
    pub fn phase_mean_deltas(&self) -> [f64; 3] {
        [0, 1, 2].map(|i| self.current.phase_mean(i) - self.baseline.phase_mean(i))
    }

    /// The phase that explains the largest share of a *positive* mean
    /// latency delta — the regression's name. `None` when no phase's
    /// mean grew (an improvement or a flat diff).
    pub fn top_regressed_phase(&self) -> Option<&'static str> {
        let deltas = self.phase_mean_deltas();
        let (mut best, mut best_delta) = (None, 0.0f64);
        for (i, d) in deltas.iter().enumerate() {
            if *d > best_delta {
                best = Some(PHASE_NAMES[i]);
                best_delta = *d;
            }
        }
        best
    }

    /// One-sentence verdict: which phase moved, by how much, carrying
    /// what share of the end-to-end delta. This is the line the perf
    /// gate prints under a failed metric.
    pub fn verdict(&self) -> String {
        let total = self.delta_mean();
        if total.abs() < 1e-9 {
            return "mean end-to-end latency is unchanged".to_string();
        }
        let deltas = self.phase_mean_deltas();
        // The dominant mover in the delta's own direction.
        let (mut idx, mut mag) = (0usize, f64::MIN);
        for (i, d) in deltas.iter().enumerate() {
            let aligned = d * total.signum();
            if aligned > mag {
                (idx, mag) = (i, aligned);
            }
        }
        let share = (deltas[idx] / total * 100.0).round();
        let direction = if total > 0.0 {
            "regression"
        } else {
            "improvement"
        };
        format!(
            "{} explains {share:.0}% of the {total:+.2}-tick mean latency {direction} ({:+.2} ticks)",
            PHASE_NAMES[idx], deltas[idx]
        )
    }

    /// Renders the full markdown report: latency table, additive phase
    /// attribution with the verdict, and (in trace mode) the event
    /// census shifts.
    pub fn render_markdown(&self, baseline_label: &str, current_label: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# Trace diff — phase attribution\n");
        let _ = writeln!(
            out,
            "Baseline: `{baseline_label}` — current: `{current_label}`\n"
        );
        if self.baseline_dropped > 0 || self.current_dropped > 0 {
            let _ = writeln!(
                out,
                "> **Warning:** journal overflow (baseline dropped {}, current \
                 dropped {}); every figure below is a lower bound over the \
                 surviving spans.\n",
                self.baseline_dropped, self.current_dropped
            );
        }
        let _ = writeln!(out, "| | baseline | current | Δ |");
        let _ = writeln!(out, "|---|---|---|---|");
        let _ = writeln!(
            out,
            "| delivered spans | {} | {} | {:+} |",
            self.baseline.count,
            self.current.count,
            self.current.count as i64 - self.baseline.count as i64
        );
        let _ = writeln!(
            out,
            "| mean latency (ticks) | {:.2} | {:.2} | {:+.2} |",
            self.baseline.total_mean(),
            self.current.total_mean(),
            self.delta_mean()
        );
        let _ = writeln!(
            out,
            "| p99 latency (ticks) | {} | {} | {:+} |",
            self.baseline.total_p99,
            self.current.total_p99,
            self.current.total_p99 as i64 - self.baseline.total_p99 as i64
        );
        let _ = writeln!(
            out,
            "| max latency (ticks) | {} | {} | {:+} |",
            self.baseline.total_max,
            self.current.total_max,
            self.current.total_max as i64 - self.baseline.total_max as i64
        );

        let _ = writeln!(out, "\n## Phase attribution\n");
        let _ = writeln!(
            out,
            "Phases sum exactly per span, so the mean deltas below sum \
             exactly to the end-to-end mean delta — additive accounting, \
             not correlation.\n"
        );
        let _ = writeln!(out, "| phase | baseline mean | current mean | Δ | p99 Δ |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        let deltas = self.phase_mean_deltas();
        for (i, name) in PHASE_NAMES.iter().enumerate() {
            let _ = writeln!(
                out,
                "| {name} | {:.2} | {:.2} | {:+.2} | {:+} |",
                self.baseline.phase_mean(i),
                self.current.phase_mean(i),
                deltas[i],
                self.current.phase_p99[i] as i64 - self.baseline.phase_p99[i] as i64
            );
        }
        let _ = writeln!(out, "\n**{}.**", self.verdict());

        if !self.baseline_census.is_empty() || !self.current_census.is_empty() {
            let _ = writeln!(out, "\n## Event census\n");
            let _ = writeln!(out, "| event | baseline | current | Δ |");
            let _ = writeln!(out, "|---|---|---|---|");
            let keys: std::collections::BTreeSet<&&str> = self
                .baseline_census
                .keys()
                .chain(self.current_census.keys())
                .collect();
            for k in keys {
                let b = self.baseline_census.get(*k).copied().unwrap_or(0);
                let c = self.current_census.get(*k).copied().unwrap_or(0);
                let _ = writeln!(out, "| {k} | {b} | {c} | {:+} |", c as i64 - b as i64);
            }
        }
        out
    }
}

/// Parses a canonical JSONL trace (the output of `Obs::trace_jsonl` or
/// an on-disk `TRACE_*.jsonl`) into events in their written (canonical)
/// order, plus the dropped-event count from the `journal_overflow` meta
/// line (0 when absent). Unparsable lines are skipped.
pub fn parse_trace(trace: &str) -> (Vec<Event>, u64) {
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for line in trace.lines() {
        if let Some(e) = Event::parse_jsonl(line) {
            events.push(e);
        } else if line.contains("\"ev\": \"journal_overflow\"") {
            dropped = jsonl_num(line, "dropped").map(|d| d as u64).unwrap_or(0);
        }
    }
    (events, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::GLOBAL_SHARD;

    fn ev(tick: u64, shard: u32, seq: u64, kind: EventKind) -> Event {
        Event {
            tick,
            shard,
            seq,
            kind,
        }
    }

    fn delivered(tick: u64, shard: u32, seq: u64, query: u64, arrival: u64, flushed: u64) -> Event {
        ev(
            tick,
            shard,
            seq,
            EventKind::QueryDelivered {
                tenant: 1,
                query,
                arrival_tick: arrival,
                flushed_tick: flushed,
                steps: 4,
            },
        )
    }

    fn accepted(tick: u64, seq: u64, query: u64, arrival: u64, completed: u64) -> Event {
        ev(
            tick,
            GLOBAL_SHARD,
            seq,
            EventKind::SinkAccepted {
                tenant: 1,
                query,
                arrival_tick: arrival,
                completed_tick: completed,
            },
        )
    }

    #[test]
    fn phases_sum_exactly_with_and_without_sink() {
        let events = vec![
            delivered(7, 0, 0, 10, 2, 4),
            accepted(9, 100, 10, 2, 7),
            delivered(8, 1, 0, 11, 3, 5),
        ];
        let set = SpanSet::reconstruct(&events);
        assert_eq!(set.spans.len(), 2);
        let s = &set.spans[0];
        assert_eq!(s.phases(), [2, 3, 2]);
        assert_eq!(s.total(), 7);
        assert_eq!(s.phases().iter().sum::<u64>(), s.total());
        let no_sink = &set.spans[1];
        assert_eq!(no_sink.accepted_tick, None);
        assert_eq!(no_sink.phases(), [2, 3, 0]);
        assert_eq!(no_sink.phases().iter().sum::<u64>(), no_sink.total());
    }

    #[test]
    fn fifo_matching_survives_reused_query_ids() {
        // Two spans with the identical join key: FIFO pairs the first
        // accept with the first delivery.
        let events = vec![
            delivered(5, 0, 0, 1, 1, 2),
            delivered(5, 0, 1, 1, 1, 2),
            accepted(6, 100, 1, 1, 5),
            accepted(8, 101, 1, 1, 5),
        ];
        let set = SpanSet::reconstruct(&events);
        assert_eq!(set.spans[0].accepted_tick, Some(6));
        assert_eq!(set.spans[1].accepted_tick, Some(8));
        assert_eq!(set.unmatched_accepts, 0);
    }

    #[test]
    fn orphan_accepts_are_counted_not_invented() {
        let events = vec![accepted(6, 100, 9, 1, 5)];
        let set = SpanSet::reconstruct(&events);
        assert!(set.spans.is_empty());
        assert_eq!(set.unmatched_accepts, 1);
    }

    #[test]
    fn fleet_events_annotate_intersecting_spans_only() {
        let events = vec![
            delivered(10, 0, 0, 1, 4, 6),
            delivered(30, 0, 1, 2, 25, 27),
            ev(
                3,
                1,
                200,
                EventKind::Migration {
                    tenant: 1,
                    from: 0,
                    to: 1,
                    cost: 0.5,
                },
            ),
            ev(
                8,
                1,
                201,
                EventKind::Migration {
                    tenant: 1,
                    from: 1,
                    to: 0,
                    cost: 0.5,
                },
            ),
            ev(
                9,
                2,
                202,
                EventKind::Migration {
                    tenant: 3,
                    from: 0,
                    to: 2,
                    cost: 0.5,
                },
            ),
            ev(26, 2, 300, EventKind::ShardAppended { reactivated: false }),
        ];
        let set = SpanSet::reconstruct(&events);
        // Span 1 lives [4, 10]: one own-tenant migration at 8 (the one
        // at 3 precedes arrival, tenant 3's at 9 is not ours).
        assert_eq!(set.spans[0].migrations, 1);
        assert_eq!(set.spans[0].scale_events, 0);
        // Span 2 lives [25, 30]: the append at 26 intersects.
        assert_eq!(set.spans[1].migrations, 0);
        assert_eq!(set.spans[1].scale_events, 1);
    }

    #[test]
    fn summary_sums_match_and_percentiles_are_nearest_rank() {
        let events: Vec<Event> = (0..100)
            .map(|i| delivered(10 + i, 0, i, i, i, 5 + i))
            .collect();
        let set = SpanSet::reconstruct(&events);
        let sum = set.summary();
        assert_eq!(sum.count, 100);
        // Every span: batch-wait 5, backend 5, sink-wait 0, total 10.
        assert_eq!(sum.phase_sums, [500, 500, 0]);
        assert_eq!(sum.total_sum, 1000);
        assert_eq!(sum.phase_sums.iter().sum::<u64>(), sum.total_sum);
        assert_eq!(sum.total_p99, 10);
        assert_eq!(sum.total_max, 10);
        assert_eq!(sum.phase_p99, [5, 5, 0]);
        assert!((sum.total_mean() - 10.0).abs() < 1e-12);
        assert!((sum.phase_mean(0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn exemplars_pick_real_spans_deterministically() {
        let events: Vec<Event> = (0..10)
            .map(|i| delivered(10 + i, 0, i, i, 10, 10))
            .collect();
        let set = SpanSet::reconstruct(&events);
        let ex = set.exemplars();
        let labels: Vec<&str> = ex.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["p50", "p99"]);
        assert_eq!(ex[0].1.total(), 4); // nearest-rank p50 of 0..=9
        assert_eq!(ex[1].1.total(), 9); // p99 == max span; "max" collapsed
        assert!(set.exemplars().iter().all(|(_, s)| set.spans.contains(s)));
    }

    #[test]
    fn timeline_renders_the_documented_format() {
        let span = QuerySpan {
            tenant: 3,
            query: 41,
            shard: 1,
            arrival_tick: 120,
            flushed_tick: 122,
            completed_tick: 127,
            accepted_tick: Some(129),
            steps: 8,
            migrations: 0,
            scale_events: 0,
        };
        assert_eq!(
            span.timeline(),
            "admitted @120 ──(batch-wait 2)── flushed @122 ──(backend 5)── \
             completed @127 ──(sink-wait 2)── accepted @129"
        );
    }

    #[test]
    fn phase_summary_json_round_trips() {
        let events = vec![delivered(7, 0, 0, 10, 2, 4), accepted(9, 100, 10, 2, 7)];
        let sum = SpanSet::reconstruct(&events).summary();
        let parsed = PhaseSummary::from_flat_json(&sum.to_json()).expect("parses");
        assert_eq!(parsed, sum);
        assert_eq!(PhaseSummary::from_flat_json("{\"count\": 3}"), None);
    }

    #[test]
    fn diff_attributes_the_regressed_phase_additively() {
        // Baseline: batch-wait 2, backend 3, no sink. Current: identical
        // batching/backend, but a sink now holds every walk 6 ticks.
        let base: Vec<Event> = (0..50).map(|i| delivered(10, 0, i, i, 5, 7)).collect();
        let mut cur = base.clone();
        cur.extend((0..50).map(|i| accepted(16, 1000 + i, i, 5, 10)));
        let base_trace: String = base.iter().map(|e| e.jsonl() + "\n").collect();
        let cur_trace: String = cur.iter().map(|e| e.jsonl() + "\n").collect();
        let diff = TraceDiff::from_traces(&base_trace, &cur_trace);
        assert_eq!(diff.top_regressed_phase(), Some("sink-wait"));
        // Additivity: phase mean deltas sum exactly to the total delta.
        let sum: f64 = diff.phase_mean_deltas().iter().sum();
        assert!((sum - diff.delta_mean()).abs() < 1e-9);
        assert!((diff.delta_mean() - 6.0).abs() < 1e-9);
        assert!(diff.verdict().contains("sink-wait explains 100%"));
        // Census: the current trace gained 50 sink_accepted events.
        let md = diff.render_markdown("a", "b");
        assert!(md.contains("| sink_accepted | 0 | 50 | +50 |"), "{md}");
        assert!(md.contains("**sink-wait explains 100%"));
    }

    #[test]
    fn diff_of_identical_traces_is_flat() {
        let base: Vec<Event> = (0..10).map(|i| delivered(9, 0, i, i, 4, 6)).collect();
        let trace: String = base.iter().map(|e| e.jsonl() + "\n").collect();
        let diff = TraceDiff::from_traces(&trace, &trace);
        assert_eq!(diff.top_regressed_phase(), None);
        assert_eq!(diff.verdict(), "mean end-to-end latency is unchanged");
    }

    #[test]
    fn diff_from_record_summaries_names_the_phase_without_a_census() {
        let mut base = PhaseSummary {
            count: 100,
            phase_sums: [100, 300, 0],
            total_sum: 400,
            ..PhaseSummary::default()
        };
        let mut cur = base;
        cur.phase_sums[0] = 400; // batch-wait tripled
        cur.total_sum = 700;
        base.phase_p99 = [1, 3, 0];
        cur.phase_p99 = [4, 3, 0];
        let diff = TraceDiff::from_summaries(base, cur);
        assert_eq!(diff.top_regressed_phase(), Some("batch-wait"));
        let md = diff.render_markdown("old", "new");
        assert!(!md.contains("## Event census"));
        assert!(md.contains("batch-wait explains 100%"), "{md}");
    }

    #[test]
    fn from_trace_reads_the_overflow_meta_line() {
        let trace = format!(
            "{{\"ev\": \"journal_overflow\", \"dropped\": 42}}\n{}\n{}\n",
            delivered(7, 0, 0, 10, 2, 4).jsonl(),
            accepted(9, 100, 99, 0, 0).jsonl(), // orphan: its delivery was dropped
        );
        let set = SpanSet::from_trace(&trace);
        assert_eq!(set.dropped, 42);
        assert_eq!(set.spans.len(), 1);
        assert_eq!(set.unmatched_accepts, 1);
    }
}
