//! `obsdiff` — explain a latency/throughput delta between two runs by
//! exact phase attribution.
//!
//! Compares either two canonical event traces (`TRACE_*.jsonl`, written
//! by [`grw_obs::Obs::trace_jsonl`]) or two bench records
//! (`BENCH_*.json` carrying a `"phases"` block) and renders a markdown
//! report: end-to-end latency shift, the additive per-phase breakdown
//! (batch-wait / backend-service / sink-wait mean deltas that sum
//! *exactly* to the end-to-end mean delta), a one-line verdict naming
//! the phase that regressed, and — in trace mode — the event-census
//! shifts. The perf gate runs this in CI when a bench regression fails
//! the build, so the failure names its phase instead of just a number.
//!
//! Usage: `obsdiff BASELINE CURRENT [OUT.md]` — each input is a
//! `.jsonl` trace or a `.json` bench record (both inputs must be the
//! same kind); with no output path the markdown goes to stdout.

use grw_obs::{PhaseSummary, TraceDiff};

/// Extracts the phase summary from a bench record by scanning every
/// braced `"phases": {...}` object (flat, so each ends at the first
/// `}`) and keeping the first that carries the full summary schema.
/// Records also hold a `gate.phases` tolerance block under the same
/// key — it lacks the p99/max fields, so the schema check skips it
/// regardless of which block the record serialises first.
fn phase_summary(record: &str) -> Option<PhaseSummary> {
    let mut rest = record;
    while let Some(start) = rest.find("\"phases\": {") {
        let obj = &rest[start + "\"phases\": ".len()..];
        let end = obj.find('}')?;
        if let Some(sum) = PhaseSummary::from_flat_json(&obj[..=end]) {
            return Some(sum);
        }
        rest = &obj[end..];
    }
    None
}

/// Loads one input as a phase-diffable side: a raw trace (any line
/// carries an `"ev"` field) stays a trace; a bench record yields its
/// `"phases"` summary.
enum Side {
    Trace(String),
    Record(PhaseSummary),
}

fn load(path: &str) -> Result<Side, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if content
        .lines()
        .any(|l| l.trim_start().starts_with("{\"ev\":"))
    {
        return Ok(Side::Trace(content));
    }
    phase_summary(&content).map(Side::Record).ok_or_else(|| {
        format!("{path} is neither a trace nor a bench record with a \"phases\" block")
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(baseline_path), Some(current_path)) = (args.next(), args.next()) else {
        eprintln!("usage: obsdiff BASELINE CURRENT [OUT.md]  (traces or bench records)");
        std::process::exit(2);
    };
    let sides = (load(&baseline_path), load(&current_path));
    let diff = match sides {
        (Ok(Side::Trace(b)), Ok(Side::Trace(c))) => TraceDiff::from_traces(&b, &c),
        (Ok(Side::Record(b)), Ok(Side::Record(c))) => TraceDiff::from_summaries(b, c),
        (Ok(_), Ok(_)) => {
            eprintln!("obsdiff: inputs must both be traces or both be bench records");
            std::process::exit(2);
        }
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("obsdiff: {e}");
            std::process::exit(1);
        }
    };
    let markdown = diff.render_markdown(&baseline_path, &current_path);
    match args.next() {
        Some(out_path) => {
            if let Err(e) = std::fs::write(&out_path, &markdown) {
                eprintln!("obsdiff: cannot write {out_path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {out_path}: {}", diff.verdict());
        }
        None => print!("{markdown}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_block_extraction_finds_the_flat_object() {
        let record = concat!(
            "{\n  \"bench\": \"sinks\",\n",
            "  \"phases\": {\"count\": 4, \"batch_wait_sum\": 2, \"batch_wait_p99\": 1, ",
            "\"backend_sum\": 8, \"backend_p99\": 3, \"sink_wait_sum\": 4, ",
            "\"sink_wait_p99\": 2, \"total_sum\": 14, \"total_p99\": 5, \"total_max\": 6},\n",
            "  \"summary\": {\"x\": 1}\n}\n"
        );
        let sum = phase_summary(record).unwrap();
        assert_eq!(sum.count, 4);
        assert_eq!(sum.phase_sums, [2, 8, 4]);
        assert_eq!(sum.total_sum, 14);
    }

    #[test]
    fn gate_tolerance_block_before_the_summary_is_skipped() {
        // The qps record serialises its gate block (which nests a
        // "phases" tolerance object with no p99 fields) *before* the
        // data block; extraction must scan past it.
        let record = concat!(
            "{\n  \"bench\": \"qps\",\n",
            "  \"gate\": {\"summary\": {\"completed\": 0.0}, ",
            "\"phases\": {\"count\": 0.0, \"total_sum\": 0.0, \"batch_wait_sum\": 0.0, ",
            "\"backend_sum\": 0.0, \"sink_wait_sum\": 0.0}},\n",
            "  \"phases\": {\"count\": 4, \"batch_wait_sum\": 2, \"batch_wait_p99\": 1, ",
            "\"backend_sum\": 8, \"backend_p99\": 3, \"sink_wait_sum\": 4, ",
            "\"sink_wait_p99\": 2, \"total_sum\": 14, \"total_p99\": 5, \"total_max\": 6}\n}\n"
        );
        let sum = phase_summary(record).unwrap();
        assert_eq!(sum.count, 4);
        assert_eq!(sum.total_sum, 14);
    }

    #[test]
    fn records_without_phases_are_rejected_not_zeroed() {
        assert!(phase_summary("{\"bench\": \"sampling\"}").is_none());
    }
}
