//! `obsdump` — render a deterministic event trace (`TRACE_*.jsonl`,
//! written by [`grw_obs::Obs::trace_jsonl`]) into human-readable
//! markdown: event totals, a per-shard serving summary, a per-tenant
//! span-style phase breakdown (batch-wait → backend-service →
//! sink-wait, reconstructed by [`grw_obs::SpanSet`] so the phases sum
//! exactly), the percentile worst offenders' span timelines, the
//! fleet-size timeline, and every scale verdict with the control-law
//! inputs that produced it. A trace whose journal overflowed leads with
//! a warning banner and every phase figure is marked a lower bound.
//!
//! Usage: `obsdump TRACE.jsonl [OUT.md]` — with no output path the
//! markdown goes to stdout.

use grw_obs::{jsonl_field, jsonl_num, SpanSet};
use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Default)]
struct ShardRow {
    admitted: u64,
    batches: u64,
    delivered: u64,
    spilled: u64,
    first_tick: Option<u64>,
    last_tick: u64,
}

fn shard_label(line: &str) -> String {
    match jsonl_field(line, "shard") {
        Some("null") | None => "global".to_string(),
        Some(s) => s.to_string(),
    }
}

fn render(trace: &str) -> String {
    let spans = SpanSet::from_trace(trace);
    let mut by_kind: BTreeMap<String, u64> = BTreeMap::new();
    let mut shards: BTreeMap<String, ShardRow> = BTreeMap::new();
    let mut fleet: Vec<String> = Vec::new();
    let mut decisions: Vec<String> = Vec::new();
    let mut migrations: Vec<String> = Vec::new();
    let mut parsed = 0u64;

    for line in trace.lines().filter(|l| !l.trim().is_empty()) {
        let Some(ev) = jsonl_field(line, "ev") else {
            continue;
        };
        if ev == "journal_overflow" {
            continue; // meta line, not an event — surfaced as the banner
        }
        parsed += 1;
        *by_kind.entry(ev.to_string()).or_default() += 1;
        let tick = jsonl_num(line, "tick").unwrap_or(0.0) as u64;
        let shard = shard_label(line);
        let row = shards.entry(shard.clone()).or_default();
        row.first_tick.get_or_insert(tick);
        row.last_tick = row.last_tick.max(tick);
        match ev {
            "query_admitted" => row.admitted += 1,
            "batch_flushed" => row.batches += 1,
            "sink_spilled" => row.spilled += 1,
            "query_delivered" => row.delivered += 1,
            "shard_appended" => {
                let how = if jsonl_field(line, "reactivated") == Some("true") {
                    "reactivated"
                } else {
                    "appended"
                };
                fleet.push(format!("| {tick} | shard {shard} | {how} |"));
            }
            "retire_begun" => {
                fleet.push(format!("| {tick} | shard {shard} | retire begun |"));
            }
            "shard_retired" => {
                let reclaimed = jsonl_num(line, "reclaimed").unwrap_or(0.0) as u64;
                fleet.push(format!(
                    "| {tick} | shard {shard} | retired ({reclaimed} walks reclaimed) |"
                ));
            }
            "scale_decision" => {
                let decision = jsonl_field(line, "decision").unwrap_or("?");
                let suppressed = jsonl_field(line, "suppressed").unwrap_or("null");
                let note = if suppressed == "null" {
                    String::new()
                } else {
                    format!(" (suppressed: {suppressed})")
                };
                decisions.push(format!(
                    "| {tick} | {decision}{note} | {:.3} | {:.3} | {:.3} | {:.3} | {} | {} |",
                    jsonl_num(line, "lambda_hat").unwrap_or(0.0),
                    jsonl_num(line, "floor").unwrap_or(0.0),
                    jsonl_num(line, "worst_ewma").unwrap_or(0.0),
                    jsonl_num(line, "worst_wait").unwrap_or(0.0),
                    jsonl_num(line, "shards").unwrap_or(0.0) as u64,
                    jsonl_num(line, "breach_streak").unwrap_or(0.0) as u64,
                ));
            }
            "migration" => {
                migrations.push(format!(
                    "| {tick} | tenant {} | {} → {} | {:.3} |",
                    jsonl_num(line, "tenant").unwrap_or(0.0) as u64,
                    jsonl_num(line, "from").unwrap_or(0.0) as u64,
                    jsonl_num(line, "to").unwrap_or(0.0) as u64,
                    jsonl_num(line, "cost").unwrap_or(0.0),
                ));
            }
            _ => {}
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "# Trace summary\n");
    if spans.dropped > 0 {
        let _ = writeln!(
            out,
            "> **Warning: journal overflow.** The journal dropped its {} \
             oldest events to stay within capacity; this trace is a \
             suffix of the run, so every count and phase breakdown below \
             is a **lower bound**. Raise `ServiceConfig::journal_capacity` \
             to keep the full trace.\n",
            spans.dropped
        );
    }
    if spans.unmatched_accepts > 0 {
        let _ = writeln!(
            out,
            "> {} sink accepts matched no delivered span (their delivery \
             events were dropped by the overflow above).\n",
            spans.unmatched_accepts
        );
    }
    let _ = writeln!(out, "{parsed} events.\n");
    let _ = writeln!(out, "| event | count |");
    let _ = writeln!(out, "|---|---|");
    for (kind, count) in &by_kind {
        let _ = writeln!(out, "| {kind} | {count} |");
    }

    let _ = writeln!(out, "\n## Per-shard timeline\n");
    let _ = writeln!(
        out,
        "| shard | active ticks | admitted | batches | delivered | spilled |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for (shard, row) in &shards {
        let first = row.first_tick.unwrap_or(0);
        let _ = writeln!(
            out,
            "| {shard} | {first}–{} | {} | {} | {} | {} |",
            row.last_tick, row.admitted, row.batches, row.delivered, row.spilled
        );
    }

    let _ = writeln!(out, "\n## Per-tenant phase breakdown\n");
    let _ = writeln!(
        out,
        "Additive span phases per delivered walk, in ticks: *batch-wait* \
         is flush − arrival (parked in the micro-batcher), \
         *backend-service* is completion − flush (owned by the sampling \
         backend), *sink-wait* is sink-accept − completion (delivery-side \
         backpressure; 0 without a sink). The three sum exactly to the \
         end-to-end latency{}.\n",
        if spans.dropped > 0 {
            " (lower bounds — see the overflow warning above)"
        } else {
            ""
        }
    );
    let _ = writeln!(
        out,
        "| tenant | delivered | batch-wait mean | p99 | backend mean | p99 | sink-wait mean | p99 |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
    for tenant in spans.tenants() {
        let s = spans.summary_of(|span| span.tenant == tenant);
        let _ = writeln!(
            out,
            "| {tenant} | {} | {:.2} | {} | {:.2} | {} | {:.2} | {} |",
            s.count,
            s.phase_mean(0),
            s.phase_p99[0],
            s.phase_mean(1),
            s.phase_p99[1],
            s.phase_mean(2),
            s.phase_p99[2],
        );
    }

    if !spans.spans.is_empty() {
        let _ = writeln!(out, "\n## Percentile exemplars\n");
        let _ = writeln!(
            out,
            "The *actual* spans at the latency percentiles (nearest rank, \
             ties broken deterministically) — worst offenders with their \
             full reconstructed timelines:\n"
        );
        for (label, span) in spans.exemplars() {
            let _ = writeln!(
                out,
                "**{label}** — tenant {} query {} on shard {} (total {} \
                 ticks, {} migration(s), {} scale event(s) in flight):\n",
                span.tenant,
                span.query,
                span.shard,
                span.total(),
                span.migrations,
                span.scale_events,
            );
            let _ = writeln!(out, "```text\n{}\n```\n", span.timeline());
        }
    }

    if !fleet.is_empty() {
        let _ = writeln!(out, "\n## Fleet timeline\n");
        let _ = writeln!(out, "| tick | shard | event |");
        let _ = writeln!(out, "|---|---|---|");
        for line in &fleet {
            let _ = writeln!(out, "{line}");
        }
    }

    if !decisions.is_empty() {
        let _ = writeln!(out, "\n## Scale decisions\n");
        let _ = writeln!(
            out,
            "| tick | verdict | λ̂ | floor | worst ewma | worst wait | shards | breach streak |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
        for line in &decisions {
            let _ = writeln!(out, "{line}");
        }
    }

    if !migrations.is_empty() {
        let _ = writeln!(out, "\n## Migrations\n");
        let _ = writeln!(out, "| tick | tenant | route | cost |");
        let _ = writeln!(out, "|---|---|---|---|");
        for line in &migrations {
            let _ = writeln!(out, "{line}");
        }
    }

    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(input) = args.next() else {
        eprintln!("usage: obsdump TRACE.jsonl [OUT.md]");
        std::process::exit(2);
    };
    let trace = match std::fs::read_to_string(&input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obsdump: cannot read {input}: {e}");
            std::process::exit(1);
        }
    };
    let markdown = render(&trace);
    match args.next() {
        Some(out_path) => {
            if let Err(e) = std::fs::write(&out_path, &markdown) {
                eprintln!("obsdump: cannot write {out_path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {out_path}");
        }
        None => print!("{markdown}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grw_obs::{EventKind, Obs, ScaleInputs, GLOBAL_SHARD};

    #[test]
    fn renders_every_section_from_a_synthetic_trace() {
        let obs = Obs::new();
        let mut s = obs.shard_obs(0);
        s.query_admitted(1, 3, 0);
        s.batch_flushed(2, 0, 1, "deadline");
        s.query_delivered(5, 3, 0, 1, 2, 8);
        s.flush();
        obs.record(6, 1, EventKind::ShardAppended { reactivated: false });
        obs.record(
            7,
            GLOBAL_SHARD,
            EventKind::ScaleDecision {
                decision: "up",
                inputs: Box::new(ScaleInputs {
                    lambda_hat: 1.5,
                    floor: 8.0,
                    shards: 2,
                    ..ScaleInputs::default()
                }),
            },
        );
        obs.record(
            8,
            GLOBAL_SHARD,
            EventKind::Migration {
                tenant: 3,
                from: 0,
                to: 1,
                cost: 2.0,
            },
        );
        obs.record(9, 1, EventKind::RetireBegun);
        obs.record(10, 1, EventKind::ShardRetired { reclaimed: 4 });
        let md = render(&obs.trace_jsonl());
        for section in [
            "# Trace summary",
            "## Per-shard timeline",
            "## Per-tenant phase breakdown",
            "## Percentile exemplars",
            "## Fleet timeline",
            "## Scale decisions",
            "## Migrations",
        ] {
            assert!(md.contains(section), "missing section {section}");
        }
        // Phase math: batch-wait = flushed − arrival = 1, backend =
        // tick − flushed = 3, sink-wait = 0 (no sink in this trace).
        assert!(
            md.contains("| 3 | 1 | 1.00 | 1 | 3.00 | 3 | 0.00 | 0 |"),
            "{md}"
        );
        // The single span is every percentile exemplar at once.
        assert!(
            md.contains("admitted @1 ──(batch-wait 1)── flushed @2 ──(backend 3)── completed @5"),
            "{md}"
        );
        assert!(md.contains("| 10 | shard 1 | retired (4 walks reclaimed) |"));
        assert!(!md.contains("(suppressed:"));
        assert!(!md.contains("journal overflow"));
    }

    #[test]
    fn overflow_banner_marks_breakdowns_as_lower_bounds() {
        // Capacity 4 with six events: the two oldest drop.
        let obs = Obs::with_capacity(4);
        let mut s = obs.shard_obs(0);
        for q in 0..3u64 {
            s.query_admitted(q + 1, 1, q);
            s.query_delivered(q + 5, 1, q, q + 1, q + 2, 4);
        }
        s.flush();
        assert_eq!(obs.dropped(), 2);
        let md = render(&obs.trace_jsonl());
        assert!(md.contains("**Warning: journal overflow.**"), "{md}");
        assert!(md.contains("dropped its 2 oldest events"), "{md}");
        assert!(md.contains("lower bound"), "{md}");
        assert!(md.contains("4 events."), "meta line must not count: {md}");
    }

    #[test]
    fn sink_wait_phase_appears_when_a_sink_accepts() {
        let obs = Obs::new();
        let mut s = obs.shard_obs(0);
        s.query_admitted(1, 2, 7);
        s.query_delivered(4, 2, 7, 1, 2, 6);
        s.flush();
        let mut spill = obs.shard_obs(grw_obs::GLOBAL_SHARD).seq_base(1 << 48);
        spill.sink_accepted(9, 2, 7, 1, 4);
        spill.flush();
        let md = render(&obs.trace_jsonl());
        // batch-wait 1, backend 2, sink-wait 5 — and the exemplar
        // timeline ends at the sink accept.
        assert!(
            md.contains("| 2 | 1 | 1.00 | 1 | 2.00 | 2 | 5.00 | 5 |"),
            "{md}"
        );
        assert!(md.contains("──(sink-wait 5)── accepted @9"), "{md}");
    }

    #[test]
    fn tolerates_junk_lines() {
        let md = render(
            "not json\n\n{\"ev\": \"retire_begun\", \"tick\": 1, \"shard\": 2, \"seq\": 0}\n",
        );
        assert!(md.contains("1 events."));
        assert!(md.contains("| retire_begun | 1 |"));
    }

    #[test]
    fn sink_events_round_trip() {
        let obs = Obs::new();
        let mut s = obs.shard_obs(GLOBAL_SHARD);
        s.sink_spilled(4, 2);
        s.sink_forced_flush(5);
        s.flush();
        let md = render(&obs.trace_jsonl());
        assert!(md.contains("| sink_spilled | 1 |"));
        assert!(md.contains("| sink_forced_flush | 1 |"));
        assert!(md.contains("| global |"));
    }
}
