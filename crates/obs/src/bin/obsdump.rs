//! `obsdump` — render a deterministic event trace (`TRACE_*.jsonl`,
//! written by [`grw_obs::Obs::trace_jsonl`]) into human-readable
//! markdown: event totals, a per-shard serving summary, a per-tenant
//! span-style phase breakdown (batching wait → backend occupancy), the
//! fleet-size timeline, and every scale verdict with the control-law
//! inputs that produced it.
//!
//! Usage: `obsdump TRACE.jsonl [OUT.md]` — with no output path the
//! markdown goes to stdout.

use grw_obs::{jsonl_field, jsonl_num};
use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Default)]
struct ShardRow {
    admitted: u64,
    batches: u64,
    delivered: u64,
    spilled: u64,
    first_tick: Option<u64>,
    last_tick: u64,
}

#[derive(Default)]
struct TenantRow {
    delivered: u64,
    waits: Vec<u64>,
    occupancy: Vec<u64>,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn mean(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<u64>() as f64 / values.len() as f64
}

fn shard_label(line: &str) -> String {
    match jsonl_field(line, "shard") {
        Some("null") | None => "global".to_string(),
        Some(s) => s.to_string(),
    }
}

fn render(trace: &str) -> String {
    let mut by_kind: BTreeMap<String, u64> = BTreeMap::new();
    let mut shards: BTreeMap<String, ShardRow> = BTreeMap::new();
    let mut tenants: BTreeMap<u64, TenantRow> = BTreeMap::new();
    let mut fleet: Vec<String> = Vec::new();
    let mut decisions: Vec<String> = Vec::new();
    let mut migrations: Vec<String> = Vec::new();
    let mut parsed = 0u64;

    for line in trace.lines().filter(|l| !l.trim().is_empty()) {
        let Some(ev) = jsonl_field(line, "ev") else {
            continue;
        };
        parsed += 1;
        *by_kind.entry(ev.to_string()).or_default() += 1;
        let tick = jsonl_num(line, "tick").unwrap_or(0.0) as u64;
        let shard = shard_label(line);
        let row = shards.entry(shard.clone()).or_default();
        row.first_tick.get_or_insert(tick);
        row.last_tick = row.last_tick.max(tick);
        match ev {
            "query_admitted" => row.admitted += 1,
            "batch_flushed" => row.batches += 1,
            "sink_spilled" => row.spilled += 1,
            "query_delivered" => {
                row.delivered += 1;
                let tenant = jsonl_num(line, "tenant").unwrap_or(0.0) as u64;
                let arrival = jsonl_num(line, "arrival").unwrap_or(0.0) as u64;
                let flushed = jsonl_num(line, "flushed").unwrap_or(arrival as f64) as u64;
                let t = tenants.entry(tenant).or_default();
                t.delivered += 1;
                t.waits.push(flushed.saturating_sub(arrival));
                t.occupancy.push(tick.saturating_sub(flushed));
            }
            "shard_appended" => {
                let how = if jsonl_field(line, "reactivated") == Some("true") {
                    "reactivated"
                } else {
                    "appended"
                };
                fleet.push(format!("| {tick} | shard {shard} | {how} |"));
            }
            "retire_begun" => {
                fleet.push(format!("| {tick} | shard {shard} | retire begun |"));
            }
            "shard_retired" => {
                let reclaimed = jsonl_num(line, "reclaimed").unwrap_or(0.0) as u64;
                fleet.push(format!(
                    "| {tick} | shard {shard} | retired ({reclaimed} walks reclaimed) |"
                ));
            }
            "scale_decision" => {
                let decision = jsonl_field(line, "decision").unwrap_or("?");
                let suppressed = jsonl_field(line, "suppressed").unwrap_or("null");
                let note = if suppressed == "null" {
                    String::new()
                } else {
                    format!(" (suppressed: {suppressed})")
                };
                decisions.push(format!(
                    "| {tick} | {decision}{note} | {:.3} | {:.3} | {:.3} | {:.3} | {} | {} |",
                    jsonl_num(line, "lambda_hat").unwrap_or(0.0),
                    jsonl_num(line, "floor").unwrap_or(0.0),
                    jsonl_num(line, "worst_ewma").unwrap_or(0.0),
                    jsonl_num(line, "worst_wait").unwrap_or(0.0),
                    jsonl_num(line, "shards").unwrap_or(0.0) as u64,
                    jsonl_num(line, "breach_streak").unwrap_or(0.0) as u64,
                ));
            }
            "migration" => {
                migrations.push(format!(
                    "| {tick} | tenant {} | {} → {} | {:.3} |",
                    jsonl_num(line, "tenant").unwrap_or(0.0) as u64,
                    jsonl_num(line, "from").unwrap_or(0.0) as u64,
                    jsonl_num(line, "to").unwrap_or(0.0) as u64,
                    jsonl_num(line, "cost").unwrap_or(0.0),
                ));
            }
            _ => {}
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "# Trace summary\n");
    let _ = writeln!(out, "{parsed} events.\n");
    let _ = writeln!(out, "| event | count |");
    let _ = writeln!(out, "|---|---|");
    for (kind, count) in &by_kind {
        let _ = writeln!(out, "| {kind} | {count} |");
    }

    let _ = writeln!(out, "\n## Per-shard timeline\n");
    let _ = writeln!(
        out,
        "| shard | active ticks | admitted | batches | delivered | spilled |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for (shard, row) in &shards {
        let first = row.first_tick.unwrap_or(0);
        let _ = writeln!(
            out,
            "| {shard} | {first}–{} | {} | {} | {} | {} |",
            row.last_tick, row.admitted, row.batches, row.delivered, row.spilled
        );
    }

    let _ = writeln!(out, "\n## Per-tenant phase breakdown\n");
    let _ = writeln!(
        out,
        "Span phases per delivered walk, in ticks: *batching wait* is \
         flush − arrival (time parked in the micro-batcher), *backend \
         occupancy* is delivery − flush (time owned by the sampling \
         backend and sink path).\n"
    );
    let _ = writeln!(
        out,
        "| tenant | delivered | wait mean | wait p99 | occupancy mean | occupancy p99 |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for (tenant, row) in tenants.iter_mut() {
        row.waits.sort_unstable();
        row.occupancy.sort_unstable();
        let _ = writeln!(
            out,
            "| {tenant} | {} | {:.2} | {} | {:.2} | {} |",
            row.delivered,
            mean(&row.waits),
            percentile(&row.waits, 0.99),
            mean(&row.occupancy),
            percentile(&row.occupancy, 0.99),
        );
    }

    if !fleet.is_empty() {
        let _ = writeln!(out, "\n## Fleet timeline\n");
        let _ = writeln!(out, "| tick | shard | event |");
        let _ = writeln!(out, "|---|---|---|");
        for line in &fleet {
            let _ = writeln!(out, "{line}");
        }
    }

    if !decisions.is_empty() {
        let _ = writeln!(out, "\n## Scale decisions\n");
        let _ = writeln!(
            out,
            "| tick | verdict | λ̂ | floor | worst ewma | worst wait | shards | breach streak |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
        for line in &decisions {
            let _ = writeln!(out, "{line}");
        }
    }

    if !migrations.is_empty() {
        let _ = writeln!(out, "\n## Migrations\n");
        let _ = writeln!(out, "| tick | tenant | route | cost |");
        let _ = writeln!(out, "|---|---|---|---|");
        for line in &migrations {
            let _ = writeln!(out, "{line}");
        }
    }

    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(input) = args.next() else {
        eprintln!("usage: obsdump TRACE.jsonl [OUT.md]");
        std::process::exit(2);
    };
    let trace = match std::fs::read_to_string(&input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obsdump: cannot read {input}: {e}");
            std::process::exit(1);
        }
    };
    let markdown = render(&trace);
    match args.next() {
        Some(out_path) => {
            if let Err(e) = std::fs::write(&out_path, &markdown) {
                eprintln!("obsdump: cannot write {out_path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {out_path}");
        }
        None => print!("{markdown}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grw_obs::{EventKind, Obs, ScaleInputs, GLOBAL_SHARD};

    #[test]
    fn renders_every_section_from_a_synthetic_trace() {
        let obs = Obs::new();
        let mut s = obs.shard_obs(0);
        s.query_admitted(1, 3);
        s.batch_flushed(2, 0, 1, "deadline");
        s.query_delivered(5, 3, 1, 2, 8);
        s.flush();
        obs.record(6, 1, EventKind::ShardAppended { reactivated: false });
        obs.record(
            7,
            GLOBAL_SHARD,
            EventKind::ScaleDecision {
                decision: "up",
                inputs: Box::new(ScaleInputs {
                    lambda_hat: 1.5,
                    floor: 8.0,
                    shards: 2,
                    ..ScaleInputs::default()
                }),
            },
        );
        obs.record(
            8,
            GLOBAL_SHARD,
            EventKind::Migration {
                tenant: 3,
                from: 0,
                to: 1,
                cost: 2.0,
            },
        );
        obs.record(9, 1, EventKind::RetireBegun);
        obs.record(10, 1, EventKind::ShardRetired { reclaimed: 4 });
        let md = render(&obs.trace_jsonl());
        for section in [
            "# Trace summary",
            "## Per-shard timeline",
            "## Per-tenant phase breakdown",
            "## Fleet timeline",
            "## Scale decisions",
            "## Migrations",
        ] {
            assert!(md.contains(section), "missing section {section}");
        }
        // Phase math: wait = flushed − arrival = 1, occupancy = tick − flushed = 3.
        assert!(md.contains("| 3 | 1 | 1.00 | 1 | 3.00 | 3 |"), "{md}");
        assert!(md.contains("| 10 | shard 1 | retired (4 walks reclaimed) |"));
        assert!(!md.contains("(suppressed:"));
    }

    #[test]
    fn tolerates_junk_lines() {
        let md = render(
            "not json\n\n{\"ev\": \"retire_begun\", \"tick\": 1, \"shard\": 2, \"seq\": 0}\n",
        );
        assert!(md.contains("1 events."));
        assert!(md.contains("| retire_begun | 1 |"));
    }

    #[test]
    fn sink_events_round_trip() {
        let obs = Obs::new();
        let mut s = obs.shard_obs(GLOBAL_SHARD);
        s.sink_spilled(4, 2);
        s.sink_forced_flush(5);
        s.flush();
        let md = render(&obs.trace_jsonl());
        assert!(md.contains("| sink_spilled | 1 |"));
        assert!(md.contains("| sink_forced_flush | 1 |"));
        assert!(md.contains("| global |"));
    }
}
