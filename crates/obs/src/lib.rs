//! # grw_obs — unified metrics + deterministic event tracing
//!
//! The serving stack grew five layers that each invented their own
//! telemetry (`ServiceStats`, `ShardSnapshot`, backend sampling
//! telemetry, `SinkReport`, the scale policy's internal streaks). This
//! crate is the one place they all record into:
//!
//! * [`MetricsRegistry`] — cheap atomic counters, gauges and
//!   log2-bucketed histograms addressed by static name + label set
//!   (tenant, shard, walk class), with Prometheus-style text exposition
//!   and a JSON snapshot in the `BENCH_*.json` conventions.
//! * [`Journal`] / [`Event`] — a bounded ring of structured events
//!   (query admitted / flushed / delivered, micro-batch boundaries,
//!   router migrations, every scale verdict with the control-law inputs
//!   that produced it, sink spills, alias-cache epochs) stamped with
//!   the logical machine tick, never the wall clock — a fixed seed
//!   reproduces the identical trace.
//! * `obsdump` (a bin in this crate) — renders a trace into per-tenant
//!   / per-shard timelines and a span-style phase breakdown in
//!   markdown.
//!
//! ## Recording topology
//!
//! [`Obs`] is the shared hub (cheap to clone — one `Arc`). Each
//! recording source — a `ShardRunner`, a worker's spill-delivery path —
//! holds a [`ShardObs`]: a *local* event buffer plus pre-bound metric
//! handles, so the hot path takes no lock and worker threads never
//! contend. Buffers flow back to the hub at the same barriers the stats
//! collectors already use (reports, drains, retirement, `finish`), and
//! the hub's journal sorts canonically by `(tick, shard, seq)` — which
//! is what makes the exported trace identical across the deterministic
//! and threaded serving regimes for a fixed seed and schedule.
//!
//! Everything is `std`-only, like the rest of the workspace.

mod journal;
pub mod provenance;
mod registry;

pub use journal::{jsonl_field, jsonl_num, Event, EventKind, Journal, ScaleInputs, GLOBAL_SHARD};
pub use provenance::{parse_trace, PhaseSummary, QuerySpan, SpanSet, TraceDiff, PHASE_NAMES};
pub use registry::{
    log2_bucket, Counter, Gauge, Histogram, Labels, MetricsRegistry, HISTOGRAM_BUCKETS,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default hub journal capacity (events). Big enough that every smoke
/// bench fits untruncated; a figure-scale run that overflows it keeps
/// the *newest* events and reports the drop count.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1 << 16;

/// Events a [`ShardObs`] local buffer is pre-faulted for at attach time
/// (it still grows past this if a run buffers more between barriers).
const SHARD_BUFFER_WARM: usize = 4096;

/// Sequence base for spill-delivery recorders ([`ShardObs::seq_base`]).
///
/// The canonical event order is `(tick, shard, seq)`, and a shard can
/// have *two* recording sources — its runner and its spill-delivery
/// path — plus hub-level events attributed to it. Giving each source
/// class a disjoint `seq` range makes the canonical order total (no two
/// events ever share a key), which is what keeps the sorted trace
/// string byte-identical across serving regimes.
pub const SEQ_BASE_SPILL: u64 = 1 << 48;

/// Sequence base for events recorded directly on the hub (router and
/// scale-policy events) — disjoint from runner (`0..`) and spill
/// ([`SEQ_BASE_SPILL`]) ranges; see [`SEQ_BASE_SPILL`].
pub const SEQ_BASE_HUB: u64 = 1 << 49;

#[derive(Debug)]
struct ObsInner {
    registry: MetricsRegistry,
    journal: Mutex<Journal>,
    /// Sequence source for events recorded directly on the hub (router
    /// and policy events — coordinator-thread only, so deterministic).
    seq: AtomicU64,
}

/// The shared observability hub: one registry + one journal. Clone it
/// freely — clones share the same state.
#[derive(Debug, Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    /// A live hub with the [default journal capacity](DEFAULT_JOURNAL_CAPACITY).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A live hub holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Arc::new(ObsInner {
                registry: MetricsRegistry::new(),
                journal: Mutex::new(Journal::new(capacity)),
                seq: AtomicU64::new(SEQ_BASE_HUB),
            }),
        }
    }

    /// A disabled hub: every handle is a no-op and nothing is journaled
    /// — the baseline arm of the instrumentation-overhead comparison.
    pub fn disabled() -> Self {
        Self {
            inner: Arc::new(ObsInner {
                registry: MetricsRegistry::disabled(),
                journal: Mutex::new(Journal::new(1)),
                seq: AtomicU64::new(SEQ_BASE_HUB),
            }),
        }
    }

    /// Whether this hub records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.registry.is_enabled()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// Records one event directly on the hub (sequence assigned here).
    /// Use [`ShardObs`] for per-shard hot paths instead.
    pub fn record(&self, tick: u64, shard: u32, kind: EventKind) {
        if !self.is_enabled() {
            return;
        }
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        self.inner
            .journal
            .lock()
            .expect("journal lock")
            .push(Event {
                tick,
                shard,
                seq,
                kind,
            });
    }

    /// Merges a batch of already-stamped events (a worker buffer, a
    /// runner buffer) into the hub journal.
    pub fn absorb(&self, events: Vec<Event>) {
        if events.is_empty() || !self.is_enabled() {
            return;
        }
        let mut journal = self.inner.journal.lock().expect("journal lock");
        for e in events {
            journal.push(e);
        }
    }

    /// Events dropped to the journal's capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.journal.lock().expect("journal lock").dropped()
    }

    /// The journal in canonical `(tick, shard, seq)` order.
    pub fn journal(&self) -> Vec<Event> {
        self.inner.journal.lock().expect("journal lock").sorted()
    }

    /// The canonical trace: one JSONL line per event, canonical order,
    /// trailing newline. Identical across runs for a fixed seed and
    /// schedule — the artifact the trace-determinism tests compare and
    /// `obsdump` renders.
    ///
    /// A journal that overflowed its ring leads the trace with one
    /// `{"ev": "journal_overflow", "dropped": N}` meta line, so a
    /// truncated trace is never mistaken for a complete one by any
    /// reader (`obsdump` turns it into a warning banner and marks phase
    /// breakdowns as lower bounds).
    pub fn trace_jsonl(&self) -> String {
        let (events, dropped) = {
            let journal = self.inner.journal.lock().expect("journal lock");
            (journal.sorted(), journal.dropped())
        };
        let mut out = String::with_capacity(events.len() * 96);
        if dropped > 0 {
            out.push_str(&format!(
                "{{\"ev\": \"journal_overflow\", \"dropped\": {dropped}}}\n"
            ));
        }
        for e in &events {
            out.push_str(&e.jsonl());
            out.push('\n');
        }
        out
    }

    /// A per-shard recording source bound to this hub: local event
    /// buffer (lock-free hot path) plus pre-bound metric handles.
    pub fn shard_obs(&self, shard: u32) -> ShardObs {
        let r = &self.inner.registry;
        let labels = Labels::shard(shard);
        // Pre-fault the local buffer for the same reason the hub ring
        // is pre-faulted in `Journal::new`: first-touch page faults
        // belong at attach time, not in the recording hot path.
        let mut buf = Vec::new();
        if self.is_enabled() {
            buf.resize(
                SHARD_BUFFER_WARM,
                Event {
                    tick: 0,
                    shard: 0,
                    seq: 0,
                    kind: EventKind::RetireBegun,
                },
            );
            buf.clear();
        }
        ShardObs {
            enabled: self.is_enabled(),
            shard,
            seq: 0,
            buf,
            hub: Some(self.clone()),
            admitted: r.counter("grw_queries_admitted_total", labels),
            delivered: r.counter("grw_queries_delivered_total", labels),
            batches: r.counter("grw_batches_flushed_total", labels),
            latency: r.histogram("grw_query_latency_ticks", labels),
            phase_batch_wait: r.histogram("grw_phase_batch_wait_ticks", labels),
            phase_backend: r.histogram("grw_phase_backend_service_ticks", labels),
            phase_sink_wait: r.histogram("grw_phase_sink_wait_ticks", labels),
            spilled: r.counter("grw_sink_spilled_total", labels),
            forced_flushes: r.counter("grw_sink_forced_flushes_total", labels),
            spill_depth: r.gauge("grw_sink_spill_depth", labels),
            tenant_delivered: BTreeMap::new(),
            tenant_phases: BTreeMap::new(),
            last_alias_epoch: None,
        }
    }
}

/// One locally pre-binned histogram accumulation (buckets, count, sum) —
/// the unit [`ShardObs::settle`] batches per phase before a handful of
/// `absorb_prebinned` calls.
#[derive(Clone)]
struct PreBinned {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for PreBinned {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl PreBinned {
    #[inline]
    fn add(&mut self, v: u64) {
        self.buckets[log2_bucket(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    fn settle_into(&self, h: &Histogram) {
        h.absorb_prebinned(&self.buckets, self.count, self.sum);
    }
}

/// A per-shard (or per-source) recorder: the admission/delivery hot
/// path is a single local `Vec` push — no locks, no atomics — and the
/// pre-bound registry handles settle in one bulk pass when the buffer
/// is exported. Ship the buffer back to the hub
/// with [`flush`](Self::flush) (same-thread) or
/// [`take_events`](Self::take_events) (across a report channel, merged
/// at the coordinator with [`Obs::absorb`]).
#[derive(Debug)]
pub struct ShardObs {
    enabled: bool,
    shard: u32,
    seq: u64,
    buf: Vec<Event>,
    hub: Option<Obs>,
    admitted: Counter,
    delivered: Counter,
    batches: Counter,
    latency: Histogram,
    phase_batch_wait: Histogram,
    phase_backend: Histogram,
    phase_sink_wait: Histogram,
    spilled: Counter,
    forced_flushes: Counter,
    spill_depth: Gauge,
    tenant_delivered: BTreeMap<u16, Counter>,
    /// Per-tenant phase histograms (batch-wait, backend-service,
    /// sink-wait), registered lazily like `tenant_delivered`.
    tenant_phases: BTreeMap<u16, [Histogram; 3]>,
    last_alias_epoch: Option<(u64, u64, u64)>,
}

impl Default for ShardObs {
    fn default() -> Self {
        Self::disabled()
    }
}

impl ShardObs {
    /// A recorder that records nothing — the default every runner
    /// starts with until a hub is attached.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            shard: GLOBAL_SHARD,
            seq: 0,
            buf: Vec::new(),
            hub: None,
            admitted: Counter::noop(),
            delivered: Counter::noop(),
            batches: Counter::noop(),
            latency: Histogram::noop(),
            phase_batch_wait: Histogram::noop(),
            phase_backend: Histogram::noop(),
            phase_sink_wait: Histogram::noop(),
            spilled: Counter::noop(),
            forced_flushes: Counter::noop(),
            spill_depth: Gauge::noop(),
            tenant_delivered: BTreeMap::new(),
            tenant_phases: BTreeMap::new(),
            last_alias_epoch: None,
        }
    }

    /// Whether this recorder records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Moves this recorder's sequence counter to `base` — used to give a
    /// second recording source for the same shard (the spill-delivery
    /// path, [`SEQ_BASE_SPILL`]) a seq range disjoint from its runner's,
    /// so the canonical `(tick, shard, seq)` order stays total.
    pub fn seq_base(mut self, base: u64) -> Self {
        self.seq = base;
        self
    }

    #[inline]
    fn push(&mut self, tick: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.buf.push(Event {
            tick,
            shard: self.shard,
            seq,
            kind,
        });
    }

    /// A query was accepted into the micro-batcher. Buffer-push only —
    /// the admitted counter settles in bulk at the next export barrier
    /// (see [`settle`](Self::flush)).
    #[inline]
    pub fn query_admitted(&mut self, tick: u64, tenant: u16, query: u64) {
        if !self.enabled {
            return;
        }
        self.push(tick, EventKind::QueryAdmitted { tenant, query });
    }

    /// A micro-batch boundary. Buffer-push only; counters settle at the
    /// next export barrier.
    #[inline]
    pub fn batch_flushed(&mut self, tick: u64, batch: u64, taken: usize, reason: &'static str) {
        if !self.enabled {
            return;
        }
        self.push(
            tick,
            EventKind::BatchFlushed {
                batch,
                taken: taken as u32,
                reason,
            },
        );
    }

    /// A walk was delivered at `tick`. Buffer-push only; the delivery
    /// counters and the latency histogram settle in bulk at the next
    /// export barrier.
    #[inline]
    pub fn query_delivered(
        &mut self,
        tick: u64,
        tenant: u16,
        query: u64,
        arrival_tick: u64,
        flushed_tick: u64,
        steps: u32,
    ) {
        if !self.enabled {
            return;
        }
        self.push(
            tick,
            EventKind::QueryDelivered {
                tenant,
                query,
                arrival_tick,
                flushed_tick,
                steps,
            },
        );
    }

    /// A downstream sink accepted the walk at `tick` — the delivery-side
    /// backpressure stamp. Recorded on the spill-delivery recorder (seq
    /// range [`SEQ_BASE_SPILL`]) so canonical ordering stays total.
    #[inline]
    pub fn sink_accepted(
        &mut self,
        tick: u64,
        tenant: u16,
        query: u64,
        arrival_tick: u64,
        completed_tick: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.push(
            tick,
            EventKind::SinkAccepted {
                tenant,
                query,
                arrival_tick,
                completed_tick,
            },
        );
    }

    /// Settles the metric side of everything currently buffered in one
    /// pass: local sums, then a handful of atomic adds. Runs exactly
    /// once per event — at the export barrier, right before the buffer
    /// leaves this recorder — which keeps the per-event recording cost
    /// at a single `Vec` push (the admission/delivery hot path cannot
    /// afford three atomics per walk).
    fn settle(&mut self) {
        let (mut admitted, mut delivered, mut batches) = (0u64, 0u64, 0u64);
        let mut latency = PreBinned::default();
        // Phase accumulators: [batch-wait, backend-service, sink-wait],
        // shard-level and lazily per tenant — same index order as the
        // `tenant_phases` handle arrays.
        let mut phases = [
            PreBinned::default(),
            PreBinned::default(),
            PreBinned::default(),
        ];
        let mut by_tenant: BTreeMap<u16, u64> = BTreeMap::new();
        let mut tenant_phase: BTreeMap<u16, [PreBinned; 3]> = BTreeMap::new();
        for e in &self.buf {
            match e.kind {
                EventKind::QueryAdmitted { .. } => admitted += 1,
                EventKind::BatchFlushed { .. } => batches += 1,
                EventKind::QueryDelivered {
                    tenant,
                    arrival_tick,
                    flushed_tick,
                    ..
                } => {
                    delivered += 1;
                    latency.add(e.tick.saturating_sub(arrival_tick));
                    let batch_wait = flushed_tick.saturating_sub(arrival_tick);
                    let backend = e.tick.saturating_sub(flushed_tick);
                    phases[0].add(batch_wait);
                    phases[1].add(backend);
                    *by_tenant.entry(tenant).or_insert(0) += 1;
                    let tp = tenant_phase.entry(tenant).or_default();
                    tp[0].add(batch_wait);
                    tp[1].add(backend);
                }
                EventKind::SinkAccepted {
                    tenant,
                    completed_tick,
                    ..
                } => {
                    let sink_wait = e.tick.saturating_sub(completed_tick);
                    phases[2].add(sink_wait);
                    tenant_phase.entry(tenant).or_default()[2].add(sink_wait);
                }
                _ => {}
            }
        }
        if admitted > 0 {
            self.admitted.add(admitted);
        }
        if batches > 0 {
            self.batches.add(batches);
        }
        if delivered > 0 {
            self.delivered.add(delivered);
            latency.settle_into(&self.latency);
        }
        phases[0].settle_into(&self.phase_batch_wait);
        phases[1].settle_into(&self.phase_backend);
        phases[2].settle_into(&self.phase_sink_wait);
        if let Some(hub) = &self.hub {
            for (tenant, n) in by_tenant {
                self.tenant_delivered
                    .entry(tenant)
                    .or_insert_with(|| {
                        hub.registry()
                            .counter("grw_tenant_delivered_total", Labels::tenant(tenant))
                    })
                    .add(n);
            }
            for (tenant, tp) in tenant_phase {
                let handles = self.tenant_phases.entry(tenant).or_insert_with(|| {
                    let r = hub.registry();
                    let l = Labels::tenant(tenant);
                    [
                        r.histogram("grw_phase_batch_wait_ticks", l),
                        r.histogram("grw_phase_backend_service_ticks", l),
                        r.histogram("grw_phase_sink_wait_ticks", l),
                    ]
                });
                for (acc, h) in tp.iter().zip(handles.iter()) {
                    acc.settle_into(h);
                }
            }
        }
    }

    /// A sink refused a walk; it was parked at spill depth `depth`.
    #[inline]
    pub fn sink_spilled(&mut self, tick: u64, depth: usize) {
        if !self.enabled {
            return;
        }
        self.spilled.inc();
        self.spill_depth.set(depth as i64);
        self.push(
            tick,
            EventKind::SinkSpilled {
                depth: depth as u32,
            },
        );
    }

    /// The spill bound forced a sink flush.
    #[inline]
    pub fn sink_forced_flush(&mut self, tick: u64) {
        if !self.enabled {
            return;
        }
        self.forced_flushes.inc();
        self.push(tick, EventKind::SinkForcedFlush);
    }

    /// Updates the spill-depth gauge without journaling an event (the
    /// drain path emptying the buffer).
    #[inline]
    pub fn set_spill_depth(&mut self, depth: usize) {
        if self.enabled {
            self.spill_depth.set(depth as i64);
        }
    }

    /// Records the shard's cumulative alias-cache telemetry at an
    /// observation epoch — deduplicated, so an unchanged cache (or a
    /// workload that never touches it) journals nothing.
    pub fn alias_cache_epoch(&mut self, tick: u64, hits: u64, builds: u64, evictions: u64) {
        if !self.enabled {
            return;
        }
        let now = (hits, builds, evictions);
        if now == (0, 0, 0) || self.last_alias_epoch == Some(now) {
            return;
        }
        self.last_alias_epoch = Some(now);
        self.push(
            tick,
            EventKind::AliasCacheEpoch {
                hits,
                builds,
                evictions,
            },
        );
    }

    /// Drains the local buffer (for shipping across a report channel;
    /// merge at the coordinator with [`Obs::absorb`]), settling the
    /// buffered events' metric side first.
    pub fn take_events(&mut self) -> Vec<Event> {
        if !self.buf.is_empty() {
            self.settle();
        }
        std::mem::take(&mut self.buf)
    }

    /// Pushes the local buffer into the hub (same-thread sources),
    /// settling the buffered events' metric side first.
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.settle();
        let events = std::mem::take(&mut self.buf);
        if let Some(hub) = &self.hub {
            hub.absorb(events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_obs_buffers_locally_and_flushes_to_the_hub() {
        let obs = Obs::new();
        let mut s0 = obs.shard_obs(0);
        let mut s1 = obs.shard_obs(1);
        s0.query_admitted(1, 7, 40);
        s1.query_admitted(1, 7, 41);
        s0.query_delivered(3, 7, 40, 1, 2, 8);
        assert!(obs.journal().is_empty(), "events buffer until a barrier");
        s0.flush();
        obs.absorb(s1.take_events());
        let journal = obs.journal();
        assert_eq!(journal.len(), 3);
        // Canonical order: tick, then shard, then per-source seq.
        assert_eq!(journal[0].key(), (1, 0, 0));
        assert_eq!(journal[1].key(), (1, 1, 0));
        assert_eq!(journal[2].key(), (3, 0, 1));
        // Metrics settled at the export barriers above.
        let r = obs.registry();
        assert_eq!(
            r.counter_value("grw_queries_admitted_total", Labels::shard(0)),
            Some(1)
        );
        assert_eq!(
            r.counter_value("grw_queries_delivered_total", Labels::shard(0)),
            Some(1)
        );
        assert_eq!(
            r.counter_value("grw_tenant_delivered_total", Labels::tenant(7)),
            Some(1)
        );
    }

    #[test]
    fn disabled_hub_records_nothing_anywhere() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let mut s = obs.shard_obs(0);
        s.query_admitted(1, 1, 0);
        s.query_delivered(2, 1, 0, 1, 1, 4);
        s.sink_accepted(3, 1, 0, 1, 2);
        s.sink_spilled(3, 5);
        s.flush();
        obs.record(4, GLOBAL_SHARD, EventKind::RetireBegun);
        assert!(obs.journal().is_empty());
        assert!(obs.trace_jsonl().is_empty());
        assert!(obs.registry().render_prometheus().is_empty());
    }

    #[test]
    fn alias_epochs_deduplicate() {
        let obs = Obs::new();
        let mut s = obs.shard_obs(2);
        s.alias_cache_epoch(1, 0, 0, 0); // all-zero: nothing to say
        s.alias_cache_epoch(2, 5, 1, 0);
        s.alias_cache_epoch(3, 5, 1, 0); // unchanged: deduped
        s.alias_cache_epoch(4, 9, 2, 1);
        s.flush();
        let kinds: Vec<u64> = obs.journal().iter().map(|e| e.tick).collect();
        assert_eq!(kinds, vec![2, 4]);
    }

    #[test]
    fn trace_jsonl_is_sorted_and_line_per_event() {
        let obs = Obs::new();
        obs.record(5, 1, EventKind::RetireBegun);
        obs.record(2, 0, EventKind::ShardAppended { reactivated: false });
        let trace = obs.trace_jsonl();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("shard_appended"));
        assert!(lines[1].contains("retire_begun"));
    }
}
