//! The metrics half of the observability layer: a registry of cheap
//! atomic counters, gauges and log2-bucketed histograms, addressable by
//! a static metric name plus a small label set (tenant, shard, walk
//! class).
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are obtained once and
//! then recorded through without any lock — each is an `Arc` onto the
//! registry's atomic cell, so the hot path is one relaxed atomic RMW. A
//! registry built with [`MetricsRegistry::disabled`] hands out no-op
//! handles (the `None` arm), which is what the `obs_overhead` bench arm
//! in `grw_bench::qps` measures against.
//!
//! Exposition is deliberately boring: [`render_prometheus`]
//! (`name{label="v"} value` text lines) and [`snapshot_json`] — a flat
//! hand-formatted JSON document in the same conventions as the
//! `BENCH_*.json` records, parseable by `grw_bench::json` (metric keys
//! carry their labels inline as `name{label=v}`, never a `.`, so dotted
//! path lookup stays unambiguous).
//!
//! [`render_prometheus`]: MetricsRegistry::render_prometheus
//! [`snapshot_json`]: MetricsRegistry::snapshot_json

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The label set a metric series is addressed by. Every field is
/// optional; omitted labels are simply absent from the exposition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Labels {
    /// Tenant the series belongs to.
    pub tenant: Option<u16>,
    /// Shard the series belongs to.
    pub shard: Option<u32>,
    /// Walk/backend class (`"accel"`, `"cpu"`, ...).
    pub class: Option<&'static str>,
}

impl Labels {
    /// No labels: a fleet-global series.
    pub fn none() -> Self {
        Self::default()
    }

    /// A per-shard series.
    pub fn shard(shard: u32) -> Self {
        Self {
            shard: Some(shard),
            ..Self::default()
        }
    }

    /// A per-tenant series.
    pub fn tenant(tenant: u16) -> Self {
        Self {
            tenant: Some(tenant),
            ..Self::default()
        }
    }

    /// Builder: adds the walk/backend class label.
    pub fn with_class(mut self, class: &'static str) -> Self {
        self.class = Some(class);
        self
    }

    /// Escapes a label value per the Prometheus text exposition format:
    /// backslash, double quote, and newline must be escaped inside the
    /// quoted value — a class tag like `accel"v2` must not break the
    /// line out of its quotes.
    fn escape_label_value(v: &str) -> String {
        let mut out = String::with_capacity(v.len());
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                _ => out.push(ch),
            }
        }
        out
    }

    /// Canonical (alphabetical by label name) `{k="v",...}` rendering
    /// for the Prometheus exposition; empty string when unlabelled.
    fn prometheus(&self) -> String {
        let mut parts = Vec::new();
        if let Some(c) = self.class {
            parts.push(format!("class=\"{}\"", Self::escape_label_value(c)));
        }
        if let Some(s) = self.shard {
            parts.push(format!("shard=\"{s}\""));
        }
        if let Some(t) = self.tenant {
            parts.push(format!("tenant=\"{t}\""));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }

    /// Label suffix for JSON snapshot keys: `{k=v,...}` — no quotes, no
    /// dots, so `grw_bench::json`'s dotted-path lookup never splits a
    /// metric key.
    fn json_key(&self) -> String {
        let mut parts = Vec::new();
        if let Some(c) = self.class {
            parts.push(format!("class={c}"));
        }
        if let Some(s) = self.shard {
            parts.push(format!("shard={s}"));
        }
        if let Some(t) = self.tenant {
            parts.push(format!("tenant={t}"));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }
}

/// A monotonically increasing counter handle. No-op when obtained from a
/// disabled registry.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A no-op counter (what a disabled registry hands out).
    pub fn noop() -> Self {
        Self(None)
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A point-in-time gauge handle. No-op when obtained from a disabled
/// registry.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A no-op gauge.
    pub fn noop() -> Self {
        Self(None)
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn offset(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// Bucket count of the log2 histograms: bucket `i` holds observations
/// whose bit length is `i` (upper bound `2^i − 1`), bucket 0 holds exact
/// zeros — 65 buckets cover the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
pub(crate) struct Histo {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histo {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket an observation lands in: its bit length (0 for 0).
#[inline]
pub fn log2_bucket(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// A log2-bucketed histogram handle. No-op when obtained from a disabled
/// registry.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<Histo>>);

impl Histogram {
    /// A no-op histogram.
    pub fn noop() -> Self {
        Self(None)
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.buckets[log2_bucket(v)].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Total observations (0 for a no-op handle).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Sum of observations (0 for a no-op handle).
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.sum.load(Ordering::Relaxed))
    }

    /// Merges a locally pre-binned batch of observations in one pass —
    /// the bulk complement of [`observe`](Self::observe), so recording
    /// hot paths can accumulate into a plain array and settle with a
    /// handful of atomics instead of three per observation.
    pub fn absorb_prebinned(&self, buckets: &[u64; HISTOGRAM_BUCKETS], count: u64, sum: u64) {
        let Some(h) = &self.0 else { return };
        if count == 0 {
            return;
        }
        for (slot, &n) in h.buckets.iter().zip(buckets) {
            if n > 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
        h.count.fetch_add(count, Ordering::Relaxed);
        h.sum.fetch_add(sum, Ordering::Relaxed);
    }
}

type Key = (&'static str, Labels);

#[derive(Default)]
struct Inner {
    counters: BTreeMap<Key, Arc<AtomicU64>>,
    gauges: BTreeMap<Key, Arc<AtomicI64>>,
    histograms: BTreeMap<Key, Arc<Histo>>,
}

/// The metric directory: name + labels → one shared atomic cell. The
/// registry lock is taken only when a handle is first obtained or at
/// exposition time — recording through a handle is lock-free.
pub struct MetricsRegistry {
    enabled: bool,
    inner: Mutex<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    /// A live registry.
    pub fn new() -> Self {
        Self {
            enabled: true,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// A registry whose handles are all no-ops — the zero-overhead arm
    /// of the instrumentation-cost comparison.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Whether handles obtained from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The counter series `name{labels}` (registered on first use).
    pub fn counter(&self, name: &'static str, labels: Labels) -> Counter {
        if !self.enabled {
            return Counter::noop();
        }
        let mut inner = self.inner.lock().expect("registry lock");
        Counter(Some(Arc::clone(
            inner.counters.entry((name, labels)).or_default(),
        )))
    }

    /// The gauge series `name{labels}` (registered on first use).
    pub fn gauge(&self, name: &'static str, labels: Labels) -> Gauge {
        if !self.enabled {
            return Gauge::noop();
        }
        let mut inner = self.inner.lock().expect("registry lock");
        Gauge(Some(Arc::clone(
            inner.gauges.entry((name, labels)).or_default(),
        )))
    }

    /// The histogram series `name{labels}` (registered on first use).
    pub fn histogram(&self, name: &'static str, labels: Labels) -> Histogram {
        if !self.enabled {
            return Histogram::noop();
        }
        let mut inner = self.inner.lock().expect("registry lock");
        Histogram(Some(Arc::clone(
            inner
                .histograms
                .entry((name, labels))
                .or_insert_with(|| Arc::new(Histo::new())),
        )))
    }

    /// Current value of a counter series, if it was ever registered —
    /// for tests and assertions, not hot paths.
    pub fn counter_value(&self, name: &'static str, labels: Labels) -> Option<u64> {
        let inner = self.inner.lock().expect("registry lock");
        inner
            .counters
            .get(&(name, labels))
            .map(|c| c.load(Ordering::Relaxed))
    }

    /// Prometheus-style text exposition: one `# TYPE` header per metric
    /// name, then `name{labels} value` sample lines in canonical
    /// (name, labels) order. Histograms expand into cumulative
    /// `_bucket{le=...}` samples plus `_sum` / `_count`.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("registry lock");
        let mut out = String::new();
        let mut last_type: Option<(&str, &str)> = None;
        let mut header = |out: &mut String, name: &'static str, kind: &'static str| {
            if last_type != Some((name, kind)) {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_type = Some((name, kind));
            }
        };
        for ((name, labels), cell) in &inner.counters {
            header(&mut out, name, "counter");
            let _ = writeln!(
                out,
                "{name}{} {}",
                labels.prometheus(),
                cell.load(Ordering::Relaxed)
            );
        }
        for ((name, labels), cell) in &inner.gauges {
            header(&mut out, name, "gauge");
            let _ = writeln!(
                out,
                "{name}{} {}",
                labels.prometheus(),
                cell.load(Ordering::Relaxed)
            );
        }
        for ((name, labels), h) in &inner.histograms {
            header(&mut out, name, "histogram");
            let plain = labels.prometheus();
            let joined = |extra: &str| {
                if plain.is_empty() {
                    format!("{{{extra}}}")
                } else {
                    format!("{},{extra}}}", &plain[..plain.len() - 1])
                }
            };
            let mut cumulative = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                let n = b.load(Ordering::Relaxed);
                if n == 0 {
                    continue;
                }
                cumulative += n;
                let le = if i == 0 {
                    "0".to_string()
                } else {
                    format!("{}", (1u128 << i) - 1)
                };
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    joined(&format!("le=\"{le}\""))
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{} {}",
                joined("le=\"+Inf\""),
                h.count.load(Ordering::Relaxed)
            );
            let _ = writeln!(out, "{name}_sum{plain} {}", h.sum.load(Ordering::Relaxed));
            let _ = writeln!(
                out,
                "{name}_count{plain} {}",
                h.count.load(Ordering::Relaxed)
            );
        }
        out
    }

    /// JSON snapshot in the `BENCH_*.json` conventions (hand-formatted,
    /// flat numeric maps, parseable by `grw_bench::json`): counters and
    /// gauges as `"name{label=v}": value`, histograms as
    /// `{"count", "sum", "buckets": {"<le>": n}}` objects. Everything in
    /// the snapshot is deterministic for a deterministic run — no wall
    /// clock anywhere.
    pub fn snapshot_json(&self) -> String {
        let inner = self.inner.lock().expect("registry lock");
        let mut out = String::from("{\n  \"obs\": \"metrics\",\n");
        let map = |out: &mut String, title: &str, entries: Vec<String>, trailing: bool| {
            let _ = write!(out, "  \"{title}\": {{");
            if entries.is_empty() {
                let _ = write!(out, "}}");
            } else {
                let _ = write!(out, "\n    {}\n  }}", entries.join(",\n    "));
            }
            let _ = writeln!(out, "{}", if trailing { "," } else { "" });
        };
        let counters: Vec<String> = inner
            .counters
            .iter()
            .map(|((name, labels), cell)| {
                format!(
                    "\"{name}{}\": {}",
                    labels.json_key(),
                    cell.load(Ordering::Relaxed)
                )
            })
            .collect();
        map(&mut out, "counters", counters, true);
        let gauges: Vec<String> = inner
            .gauges
            .iter()
            .map(|((name, labels), cell)| {
                format!(
                    "\"{name}{}\": {}",
                    labels.json_key(),
                    cell.load(Ordering::Relaxed)
                )
            })
            .collect();
        map(&mut out, "gauges", gauges, true);
        let histograms: Vec<String> = inner
            .histograms
            .iter()
            .map(|((name, labels), h)| {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then(|| {
                            let le = if i == 0 { 0 } else { (1u128 << i) - 1 };
                            format!("\"{le}\": {n}")
                        })
                    })
                    .collect();
                format!(
                    "\"{name}{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": {{{}}}}}",
                    labels.json_key(),
                    h.count.load(Ordering::Relaxed),
                    h.sum.load(Ordering::Relaxed),
                    buckets.join(", ")
                )
            })
            .collect();
        map(&mut out, "histograms", histograms, false);
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_one_cell_per_series() {
        let r = MetricsRegistry::new();
        let a = r.counter("grw_test_total", Labels::shard(0));
        let b = r.counter("grw_test_total", Labels::shard(0));
        let other = r.counter("grw_test_total", Labels::shard(1));
        a.add(2);
        b.inc();
        other.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(r.counter_value("grw_test_total", Labels::shard(0)), Some(3));
        assert_eq!(r.counter_value("grw_test_total", Labels::shard(1)), Some(1));
    }

    #[test]
    fn disabled_registry_hands_out_noops() {
        let r = MetricsRegistry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("grw_test_total", Labels::none());
        c.add(40);
        assert_eq!(c.get(), 0);
        assert_eq!(r.counter_value("grw_test_total", Labels::none()), None);
        let g = r.gauge("grw_depth", Labels::none());
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = r.histogram("grw_lat", Labels::none());
        h.observe(5);
        assert_eq!(h.count(), 0);
        assert!(r.render_prometheus().is_empty());
    }

    #[test]
    fn log2_buckets_cover_the_range() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(u64::MAX), 64);
        assert!(log2_bucket(u64::MAX) < HISTOGRAM_BUCKETS);
    }

    #[test]
    fn prometheus_exposition_is_canonical() {
        let r = MetricsRegistry::new();
        r.counter("grw_walks_total", Labels::shard(1)).add(7);
        r.counter("grw_walks_total", Labels::shard(0)).add(5);
        r.gauge("grw_fleet_size", Labels::none()).set(3);
        let h = r.histogram("grw_latency_ticks", Labels::tenant(2).with_class("cpu"));
        h.observe(0);
        h.observe(3);
        h.observe(3);
        let text = r.render_prometheus();
        let expected = "\
# TYPE grw_walks_total counter
grw_walks_total{shard=\"0\"} 5
grw_walks_total{shard=\"1\"} 7
# TYPE grw_fleet_size gauge
grw_fleet_size 3
# TYPE grw_latency_ticks histogram
grw_latency_ticks_bucket{class=\"cpu\",tenant=\"2\",le=\"0\"} 1
grw_latency_ticks_bucket{class=\"cpu\",tenant=\"2\",le=\"3\"} 3
grw_latency_ticks_bucket{class=\"cpu\",tenant=\"2\",le=\"+Inf\"} 3
grw_latency_ticks_sum{class=\"cpu\",tenant=\"2\"} 6
grw_latency_ticks_count{class=\"cpu\",tenant=\"2\"} 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn absorb_prebinned_hits_the_edge_bins_exactly() {
        let r = MetricsRegistry::new();
        let h = r.histogram("grw_edge_ticks", Labels::none());
        // Bin 0 (value 0) and the saturating top bin (u64::MAX → bin 64)
        // in one pre-binned batch.
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        buckets[log2_bucket(0)] = 3;
        buckets[log2_bucket(u64::MAX)] = 2;
        h.absorb_prebinned(&buckets, 5, u64::MAX.wrapping_mul(2));
        assert_eq!(h.count(), 5);
        let text = r.render_prometheus();
        assert!(text.contains("grw_edge_ticks_bucket{le=\"0\"} 3"), "{text}");
        // Top bin upper edge: 2^64 − 1 rendered exactly (the u128 shift
        // in the exposition must not overflow).
        assert!(
            text.contains("grw_edge_ticks_bucket{le=\"18446744073709551615\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("grw_edge_ticks_bucket{le=\"+Inf\"} 5"),
            "{text}"
        );
    }

    #[test]
    fn absorb_prebinned_with_zero_count_is_a_noop() {
        let r = MetricsRegistry::new();
        let h = r.histogram("grw_noop_ticks", Labels::none());
        // An all-empty settle (no deliveries between barriers) must not
        // touch the cells — even if the bucket array is (buggily)
        // non-zero, count == 0 wins.
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        h.absorb_prebinned(&buckets, 0, 0);
        buckets[3] = 9;
        h.absorb_prebinned(&buckets, 0, 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        let text = r.render_prometheus();
        assert!(
            text.contains("grw_noop_ticks_bucket{le=\"+Inf\"} 0"),
            "{text}"
        );
        // Merging after the no-ops still lands in the right bins.
        h.absorb_prebinned(&buckets, 9, 36);
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 36);
        assert!(r
            .render_prometheus()
            .contains("grw_noop_ticks_bucket{le=\"7\"} 9"));
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let r = MetricsRegistry::new();
        r.counter(
            "grw_escape_total",
            Labels::none().with_class("ac\\cel\"v2\nx"),
        )
        .add(1);
        let text = r.render_prometheus();
        assert!(
            text.contains("grw_escape_total{class=\"ac\\\\cel\\\"v2\\nx\"} 1"),
            "{text}"
        );
        // Exactly one sample line for the series (plus its # TYPE
        // header): the newline inside the label value must not split
        // the exposition.
        assert_eq!(
            text.lines()
                .filter(|l| l.starts_with("grw_escape_total"))
                .count(),
            1
        );
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let r = MetricsRegistry::new();
        r.counter("grw_walks_total", Labels::shard(0)).add(5);
        r.gauge("grw_fleet_size", Labels::none()).set(2);
        r.histogram("grw_latency_ticks", Labels::none()).observe(9);
        let json = r.snapshot_json();
        // Structural sanity without a parser dependency (grw_bench's
        // parser round-trips this format in its own tests).
        assert!(json.contains("\"grw_walks_total{shard=0}\": 5"));
        assert!(json.contains("\"grw_fleet_size\": 2"));
        assert!(json.contains("\"count\": 1, \"sum\": 9"));
        assert!(json.contains("\"15\": 1"), "9 lands in the le=15 bucket");
        assert!(!json.contains("\n\n"));
    }
}
