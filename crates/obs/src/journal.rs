//! The tracing half of the observability layer: structured [`Event`]s
//! stamped with the machine's logical tick (never the wall clock), a
//! bounded ring [`Journal`], and a canonical JSONL serialization.
//!
//! Determinism is the design constraint everything else follows from:
//! an event's identity is `(tick, shard, seq, kind)` where `seq` is a
//! per-source monotone counter, so a fixed seed and submission schedule
//! reproduce the identical trace — and because per-shard event streams
//! are a pure function of that shard's own command stream, the *sorted*
//! trace is bit-identical across the deterministic and threaded serving
//! regimes (the same invariant the walk-multiset parity tests encode).

use std::fmt::Write as _;

/// Every input the [`TargetSlo`](../../grw_route/struct.TargetSlo.html)
/// control law read when it produced one scale verdict — the payload of
/// [`EventKind::ScaleDecision`], so a surprising scale event (or a
/// surprising *absence* of one) can be explained from the trace alone.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScaleInputs {
    /// Arrival-rate EWMA λ̂ (queries/tick) at decision time.
    pub lambda_hat: f64,
    /// The guard-band floor `target × (1 − band)` both directions are
    /// held against.
    pub floor: f64,
    /// Worst per-shard latency EWMA among eligible shards with backlog.
    pub worst_ewma: f64,
    /// Worst per-shard queueing (drain-time) estimate.
    pub worst_wait: f64,
    /// Whether either live signal breached the floor this step.
    pub pressured: bool,
    /// Whether the shrunken fleet would absorb the current backlog
    /// under the floor.
    pub fits_smaller: bool,
    /// Whether λ̂ keeps a band-sized headroom on the shrunken fleet.
    pub occupancy_fits: bool,
    /// M/M/1-shaped post-shrink latency prediction (the shrink guard).
    pub predicted_shrunk: f64,
    /// Consecutive pressured observations, after this one.
    pub breach_streak: u64,
    /// Consecutive slack observations, after this one.
    pub slack_streak: u64,
    /// Live (eligible) fleet size observed.
    pub shards: u32,
    /// Why a wanted scale event did *not* fire this step (`"breach-streak"`,
    /// `"up-cooldown"`, `"at-max-shards"`, `"slack-streak"`,
    /// `"down-cooldown"`, `"at-min-shards"`); `None` when the verdict
    /// fired or nothing was wanted.
    pub suppressed: Option<&'static str>,
}

impl ScaleInputs {
    fn jsonl(&self, out: &mut String) {
        let _ = write!(
            out,
            "\"lambda_hat\": {:.6}, \"floor\": {:.3}, \"worst_ewma\": {:.3}, \
             \"worst_wait\": {:.3}, \"pressured\": {}, \"fits_smaller\": {}, \
             \"occupancy_fits\": {}, \"predicted_shrunk\": {:.3}, \
             \"breach_streak\": {}, \"slack_streak\": {}, \"shards\": {}, \
             \"suppressed\": {}",
            self.lambda_hat,
            self.floor,
            self.worst_ewma,
            self.worst_wait,
            self.pressured,
            self.fits_smaller,
            self.occupancy_fits,
            if self.predicted_shrunk.is_finite() {
                self.predicted_shrunk
            } else {
                -1.0 // JSON has no Infinity; -1 is unambiguous (waits are >= 0)
            },
            self.breach_streak,
            self.slack_streak,
            self.shards,
            match self.suppressed {
                Some(s) => format!("\"{s}\""),
                None => "null".to_string(),
            },
        );
    }
}

/// What happened. Serving-layer kinds are recorded per shard by the
/// `ShardRunner` / spill-delivery machinery; routing-layer kinds by the
/// `Router`.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A query was accepted into a shard's micro-batcher.
    QueryAdmitted {
        /// Submitting tenant.
        tenant: u16,
        /// Tenant-local query id — the span join key shared with
        /// [`QueryDelivered`](Self::QueryDelivered) and
        /// [`SinkAccepted`](Self::SinkAccepted).
        query: u64,
    },
    /// A micro-batch boundary: the batcher released a batch to the
    /// backend.
    BatchFlushed {
        /// Shard-local batch id.
        batch: u64,
        /// Queries in the batch.
        taken: u32,
        /// What released it (`"size"`, `"deadline"`, `"drain"`).
        reason: &'static str,
    },
    /// A walk completed and was delivered (the event's own tick is the
    /// completion tick).
    QueryDelivered {
        /// Owning tenant.
        tenant: u16,
        /// Tenant-local query id.
        query: u64,
        /// When the query was admitted.
        arrival_tick: u64,
        /// When its micro-batch flushed to the backend.
        flushed_tick: u64,
        /// Steps in the delivered walk.
        steps: u32,
    },
    /// A sink consumed the walk (the event's own tick is the accept
    /// tick) — the delivery-side terminus of a query's span, so sink
    /// backpressure shows up as `tick − completed` in the trace.
    SinkAccepted {
        /// Owning tenant.
        tenant: u16,
        /// Tenant-local query id.
        query: u64,
        /// When the query was admitted.
        arrival_tick: u64,
        /// When its walk completed (the matching
        /// [`QueryDelivered`](Self::QueryDelivered) tick).
        completed_tick: u64,
    },
    /// A sink refused a walk and it was parked in the bounded spill
    /// buffer.
    SinkSpilled {
        /// Spill depth after parking.
        depth: u32,
    },
    /// The spill bound would have breached; the sink was force-flushed.
    SinkForcedFlush,
    /// The router re-bound a tenant to a different shard at a
    /// micro-batch boundary.
    Migration {
        /// Migrating tenant.
        tenant: u16,
        /// Shard the tenant was bound to.
        from: u32,
        /// Shard the tenant is now bound to.
        to: u32,
        /// Destination backlog at migration time — the queueing cost the
        /// placement accepted.
        cost: f64,
    },
    /// A scale policy's verdict for one control step — recorded for
    /// *every* step verdict, suppressed ones included (see
    /// [`ScaleInputs::suppressed`]).
    ScaleDecision {
        /// `"up"`, `"down"`, or `"hold"`.
        decision: &'static str,
        /// The control-law inputs that produced the verdict.
        inputs: Box<ScaleInputs>,
    },
    /// The fleet grew by one shard (the event's shard).
    ShardAppended {
        /// Whether a draining shard was reactivated instead of a new
        /// one appended.
        reactivated: bool,
    },
    /// The fleet began retiring the event's shard (drain-in-place).
    RetireBegun,
    /// The event's shard ran dry and left the fleet.
    ShardRetired {
        /// Walks reclaimed by the retirement drain.
        reclaimed: u32,
    },
    /// Cumulative second-order alias-cache telemetry for the event's
    /// shard at an observation epoch (an export barrier).
    AliasCacheEpoch {
        /// Cache hits so far.
        hits: u64,
        /// Alias rows built so far.
        builds: u64,
        /// Rows evicted so far.
        evictions: u64,
    },
}

impl EventKind {
    /// Stable kind tag, used as the JSONL `ev` field.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::QueryAdmitted { .. } => "query_admitted",
            EventKind::BatchFlushed { .. } => "batch_flushed",
            EventKind::QueryDelivered { .. } => "query_delivered",
            EventKind::SinkAccepted { .. } => "sink_accepted",
            EventKind::SinkSpilled { .. } => "sink_spilled",
            EventKind::SinkForcedFlush => "sink_forced_flush",
            EventKind::Migration { .. } => "migration",
            EventKind::ScaleDecision { .. } => "scale_decision",
            EventKind::ShardAppended { .. } => "shard_appended",
            EventKind::RetireBegun => "retire_begun",
            EventKind::ShardRetired { .. } => "shard_retired",
            EventKind::AliasCacheEpoch { .. } => "alias_cache_epoch",
        }
    }
}

/// Sentinel shard id for events that belong to no single shard (the
/// deterministic regime's service-global spill, router-level events).
pub const GLOBAL_SHARD: u32 = u32::MAX;

/// One journal entry. Identity (and canonical order) is
/// `(tick, shard, seq)`: `tick` is the logical machine tick at record
/// time, `seq` a per-source monotone counter — never a wall clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Logical tick when the event was recorded.
    pub tick: u64,
    /// Recording shard, or [`GLOBAL_SHARD`].
    pub shard: u32,
    /// Per-source sequence number (ties events on the same tick into
    /// their true per-shard order).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Canonical sort key: per-shard streams interleave by tick, ties
    /// break by shard then per-source order.
    pub fn key(&self) -> (u64, u32, u64) {
        (self.tick, self.shard, self.seq)
    }

    /// One canonical JSONL line (no trailing newline). Field order is
    /// fixed, so traces compare with plain string equality.
    pub fn jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        let shard = if self.shard == GLOBAL_SHARD {
            "null".to_string()
        } else {
            self.shard.to_string()
        };
        let _ = write!(
            out,
            "{{\"ev\": \"{}\", \"tick\": {}, \"shard\": {shard}, \"seq\": {}",
            self.kind.tag(),
            self.tick,
            self.seq
        );
        match &self.kind {
            EventKind::QueryAdmitted { tenant, query } => {
                let _ = write!(out, ", \"tenant\": {tenant}, \"query\": {query}");
            }
            EventKind::BatchFlushed {
                batch,
                taken,
                reason,
            } => {
                let _ = write!(
                    out,
                    ", \"batch\": {batch}, \"taken\": {taken}, \"reason\": \"{reason}\""
                );
            }
            EventKind::QueryDelivered {
                tenant,
                query,
                arrival_tick,
                flushed_tick,
                steps,
            } => {
                let _ = write!(
                    out,
                    ", \"tenant\": {tenant}, \"query\": {query}, \"arrival\": {arrival_tick}, \
                     \"flushed\": {flushed_tick}, \"steps\": {steps}"
                );
            }
            EventKind::SinkAccepted {
                tenant,
                query,
                arrival_tick,
                completed_tick,
            } => {
                let _ = write!(
                    out,
                    ", \"tenant\": {tenant}, \"query\": {query}, \"arrival\": {arrival_tick}, \
                     \"completed\": {completed_tick}"
                );
            }
            EventKind::SinkSpilled { depth } => {
                let _ = write!(out, ", \"depth\": {depth}");
            }
            EventKind::SinkForcedFlush => {}
            EventKind::Migration {
                tenant,
                from,
                to,
                cost,
            } => {
                let _ = write!(
                    out,
                    ", \"tenant\": {tenant}, \"from\": {from}, \"to\": {to}, \"cost\": {cost:.3}"
                );
            }
            EventKind::ScaleDecision { decision, inputs } => {
                let _ = write!(out, ", \"decision\": \"{decision}\", ");
                inputs.jsonl(&mut out);
            }
            EventKind::ShardAppended { reactivated } => {
                let _ = write!(out, ", \"reactivated\": {reactivated}");
            }
            EventKind::RetireBegun => {}
            EventKind::ShardRetired { reclaimed } => {
                let _ = write!(out, ", \"reclaimed\": {reclaimed}");
            }
            EventKind::AliasCacheEpoch {
                hits,
                builds,
                evictions,
            } => {
                let _ = write!(
                    out,
                    ", \"hits\": {hits}, \"builds\": {builds}, \"evictions\": {evictions}"
                );
            }
        }
        out.push('}');
        out
    }

    /// Parses one canonical JSONL line (the output of
    /// [`jsonl`](Self::jsonl)) back into an [`Event`] — the reader half
    /// of the trace format, used by `obsdiff` and the provenance layer
    /// to reconstruct spans from an on-disk `TRACE_*.jsonl`. Returns
    /// `None` for junk lines, unknown event kinds, and the
    /// `journal_overflow` meta line.
    pub fn parse_jsonl(line: &str) -> Option<Event> {
        let ev = jsonl_field(line, "ev")?;
        let num = |f: &str| jsonl_num(line, f);
        let int = |f: &str| num(f).map(|v| v as u64);
        let tick = int("tick")?;
        let seq = int("seq")?;
        let shard = match jsonl_field(line, "shard")? {
            "null" => GLOBAL_SHARD,
            s => s.parse().ok()?,
        };
        let tenant = || int("tenant").map(|t| t as u16);
        let kind = match ev {
            "query_admitted" => EventKind::QueryAdmitted {
                tenant: tenant()?,
                query: int("query")?,
            },
            "batch_flushed" => EventKind::BatchFlushed {
                batch: int("batch")?,
                taken: int("taken")? as u32,
                reason: match jsonl_field(line, "reason")? {
                    "size" => "size",
                    "deadline" => "deadline",
                    "drain" => "drain",
                    _ => return None,
                },
            },
            "query_delivered" => EventKind::QueryDelivered {
                tenant: tenant()?,
                query: int("query")?,
                arrival_tick: int("arrival")?,
                flushed_tick: int("flushed")?,
                steps: int("steps")? as u32,
            },
            "sink_accepted" => EventKind::SinkAccepted {
                tenant: tenant()?,
                query: int("query")?,
                arrival_tick: int("arrival")?,
                completed_tick: int("completed")?,
            },
            "sink_spilled" => EventKind::SinkSpilled {
                depth: int("depth")? as u32,
            },
            "sink_forced_flush" => EventKind::SinkForcedFlush,
            "migration" => EventKind::Migration {
                tenant: tenant()?,
                from: int("from")? as u32,
                to: int("to")? as u32,
                cost: num("cost")?,
            },
            "scale_decision" => EventKind::ScaleDecision {
                decision: match jsonl_field(line, "decision")? {
                    "up" => "up",
                    "down" => "down",
                    "hold" => "hold",
                    _ => return None,
                },
                inputs: Box::new(ScaleInputs {
                    lambda_hat: num("lambda_hat")?,
                    floor: num("floor")?,
                    worst_ewma: num("worst_ewma")?,
                    worst_wait: num("worst_wait")?,
                    pressured: jsonl_field(line, "pressured")? == "true",
                    fits_smaller: jsonl_field(line, "fits_smaller")? == "true",
                    occupancy_fits: jsonl_field(line, "occupancy_fits")? == "true",
                    predicted_shrunk: num("predicted_shrunk")?,
                    breach_streak: int("breach_streak")?,
                    slack_streak: int("slack_streak")?,
                    shards: int("shards")? as u32,
                    suppressed: match jsonl_field(line, "suppressed")? {
                        "null" => None,
                        "breach-streak" => Some("breach-streak"),
                        "up-cooldown" => Some("up-cooldown"),
                        "at-max-shards" => Some("at-max-shards"),
                        "slack-streak" => Some("slack-streak"),
                        "down-cooldown" => Some("down-cooldown"),
                        "at-min-shards" => Some("at-min-shards"),
                        _ => return None,
                    },
                }),
            },
            "shard_appended" => EventKind::ShardAppended {
                reactivated: jsonl_field(line, "reactivated")? == "true",
            },
            "retire_begun" => EventKind::RetireBegun,
            "shard_retired" => EventKind::ShardRetired {
                reclaimed: int("reclaimed")? as u32,
            },
            "alias_cache_epoch" => EventKind::AliasCacheEpoch {
                hits: int("hits")?,
                builds: int("builds")?,
                evictions: int("evictions")?,
            },
            _ => return None,
        };
        Some(Event {
            tick,
            shard,
            seq,
            kind,
        })
    }
}

/// A bounded event ring: at capacity the *oldest* entry is dropped (the
/// tail of a trace is what explains the incident you are holding), and
/// the drop count is reported so a truncated trace is never mistaken
/// for a complete one.
#[derive(Debug)]
pub struct Journal {
    events: std::collections::VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Journal {
    /// An empty journal holding at most `capacity` events.
    ///
    /// The ring is allocated *and pre-faulted* up front: a large ring
    /// comes from the OS as untouched pages that would otherwise fault
    /// one by one on the recording path, billing the construction cost
    /// to the serving hot loop. Writing through the whole buffer here
    /// moves every fault to construction time.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut events = std::collections::VecDeque::with_capacity(capacity);
        for _ in 0..capacity {
            events.push_back(Event {
                tick: 0,
                shard: 0,
                seq: 0,
                kind: EventKind::RetireBegun,
            });
        }
        events.clear();
        Self {
            events,
            capacity,
            dropped: 0,
        }
    }

    /// Appends one event, evicting the oldest at capacity.
    pub fn push(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events dropped to the capacity bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The held events in canonical `(tick, shard, seq)` order.
    pub fn sorted(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self.events.iter().cloned().collect();
        events.sort_by_key(Event::key);
        events
    }
}

/// Minimal field extraction from one of our own JSONL lines — enough
/// for `obsdump` without a parser dependency (the writer and reader
/// live in this crate, so the format is fully under our control).
pub fn jsonl_field<'a>(line: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\": ");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest
        .char_indices()
        .find(|(i, c)| {
            if rest.starts_with('"') {
                *c == '"' && *i > 0
            } else {
                *c == ',' || *c == '}'
            }
        })
        .map(|(i, _)| i)?;
    let raw = &rest[..end];
    Some(raw.strip_prefix('"').unwrap_or(raw))
}

/// `jsonl_field` parsed as `f64` (integers included).
pub fn jsonl_num(line: &str, field: &str) -> Option<f64> {
    jsonl_field(line, field)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivered(tick: u64, shard: u32, seq: u64) -> Event {
        Event {
            tick,
            shard,
            seq,
            kind: EventKind::QueryDelivered {
                tenant: 3,
                query: 41,
                arrival_tick: tick.saturating_sub(2),
                flushed_tick: tick.saturating_sub(1),
                steps: 8,
            },
        }
    }

    #[test]
    fn jsonl_lines_are_canonical_and_self_readable() {
        let e = delivered(12, 1, 5);
        let line = e.jsonl();
        assert_eq!(
            line,
            "{\"ev\": \"query_delivered\", \"tick\": 12, \"shard\": 1, \"seq\": 5, \
             \"tenant\": 3, \"query\": 41, \"arrival\": 10, \"flushed\": 11, \"steps\": 8}"
        );
        assert_eq!(jsonl_field(&line, "ev"), Some("query_delivered"));
        assert_eq!(jsonl_num(&line, "tick"), Some(12.0));
        assert_eq!(jsonl_num(&line, "arrival"), Some(10.0));
        assert_eq!(jsonl_num(&line, "missing"), None);
    }

    #[test]
    fn every_event_kind_round_trips_through_parse_jsonl() {
        let kinds = vec![
            EventKind::QueryAdmitted {
                tenant: 2,
                query: 17,
            },
            EventKind::BatchFlushed {
                batch: 4,
                taken: 9,
                reason: "deadline",
            },
            EventKind::QueryDelivered {
                tenant: 2,
                query: 17,
                arrival_tick: 3,
                flushed_tick: 4,
                steps: 8,
            },
            EventKind::SinkAccepted {
                tenant: 2,
                query: 17,
                arrival_tick: 3,
                completed_tick: 7,
            },
            EventKind::SinkSpilled { depth: 5 },
            EventKind::SinkForcedFlush,
            EventKind::Migration {
                tenant: 2,
                from: 0,
                to: 1,
                cost: 2.125,
            },
            EventKind::ScaleDecision {
                decision: "hold",
                inputs: Box::new(ScaleInputs {
                    lambda_hat: 2.5,
                    floor: 9.0,
                    worst_ewma: 10.5,
                    worst_wait: 3.0,
                    pressured: true,
                    breach_streak: 2,
                    shards: 3,
                    suppressed: Some("breach-streak"),
                    ..ScaleInputs::default()
                }),
            },
            EventKind::ShardAppended { reactivated: true },
            EventKind::RetireBegun,
            EventKind::ShardRetired { reclaimed: 12 },
            EventKind::AliasCacheEpoch {
                hits: 8,
                builds: 2,
                evictions: 1,
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let e = Event {
                tick: 10 + i as u64,
                shard: if i % 2 == 0 { i as u32 } else { GLOBAL_SHARD },
                seq: i as u64,
                kind,
            };
            let parsed = Event::parse_jsonl(&e.jsonl())
                .unwrap_or_else(|| panic!("unparsable: {}", e.jsonl()));
            assert_eq!(parsed, e, "round trip must be lossless");
        }
        assert_eq!(Event::parse_jsonl("not json"), None);
        assert_eq!(
            Event::parse_jsonl("{\"ev\": \"mystery\", \"tick\": 1, \"shard\": 0, \"seq\": 0}"),
            None
        );
    }

    #[test]
    fn global_shard_serializes_as_null() {
        let e = Event {
            tick: 1,
            shard: GLOBAL_SHARD,
            seq: 0,
            kind: EventKind::SinkForcedFlush,
        };
        assert!(e.jsonl().contains("\"shard\": null"));
        assert_eq!(jsonl_field(&e.jsonl(), "shard"), Some("null"));
    }

    #[test]
    fn scale_decision_carries_every_policy_input() {
        let e = Event {
            tick: 40,
            shard: GLOBAL_SHARD,
            seq: 7,
            kind: EventKind::ScaleDecision {
                decision: "hold",
                inputs: Box::new(ScaleInputs {
                    lambda_hat: 2.5,
                    floor: 9.0,
                    worst_ewma: 10.5,
                    worst_wait: 3.0,
                    pressured: true,
                    predicted_shrunk: f64::INFINITY,
                    breach_streak: 2,
                    shards: 3,
                    suppressed: Some("breach-streak"),
                    ..ScaleInputs::default()
                }),
            },
        };
        let line = e.jsonl();
        for field in [
            "lambda_hat",
            "floor",
            "worst_ewma",
            "worst_wait",
            "pressured",
            "fits_smaller",
            "occupancy_fits",
            "predicted_shrunk",
            "breach_streak",
            "slack_streak",
            "shards",
            "suppressed",
        ] {
            assert!(line.contains(&format!("\"{field}\": ")), "missing {field}");
        }
        assert_eq!(jsonl_field(&line, "suppressed"), Some("breach-streak"));
        assert_eq!(
            jsonl_num(&line, "predicted_shrunk"),
            Some(-1.0),
            "infinity flattens to the -1 sentinel"
        );
    }

    #[test]
    fn journal_ring_drops_oldest_and_counts() {
        let mut j = Journal::new(3);
        for seq in 0..5 {
            j.push(delivered(seq, 0, seq));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        let ticks: Vec<u64> = j.sorted().iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![2, 3, 4]);
    }

    #[test]
    fn canonical_sort_orders_tick_then_shard_then_seq() {
        let mut j = Journal::new(16);
        j.push(delivered(2, 0, 1));
        j.push(delivered(1, 1, 0));
        j.push(delivered(1, 0, 3));
        j.push(delivered(1, 0, 2));
        let keys: Vec<_> = j.sorted().iter().map(Event::key).collect();
        assert_eq!(keys, vec![(1, 0, 2), (1, 0, 3), (1, 1, 0), (2, 0, 1)]);
    }
}
