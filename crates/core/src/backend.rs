//! Streaming backend over the cycle-level accelerator model.
//!
//! The hardware streams tasks hop-by-hop; the software interface streams
//! *queries* micro-batch by micro-batch: submissions accumulate until a
//! [`poll`](grw_algo::WalkBackend::poll), which runs the accumulated batch
//! through the cycle simulation and banks its report. Cumulative counters
//! (cycles, steps, transactions, bytes) merge across micro-batches so a
//! serving layer sees one continuous simulated machine.

use crate::accelerator::Accelerator;
use crate::report::{RunReport, TerminationBreakdown};
use grw_algo::{BackendTelemetry, PreparedGraph, WalkBackend, WalkPath, WalkQuery, WalkSpec};
use grw_sim::stats::{SamplingCounters, UtilizationMeter};
use std::borrow::Borrow;
use std::collections::VecDeque;

/// Default bound on queries the backend buffers before pushing back.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1 << 20;

/// An [`Accelerator`] bound to a graph and spec, exposed as a streaming
/// [`WalkBackend`].
///
/// Micro-batch semantics: all queries accepted since the last poll are
/// simulated as one continuous run (back-to-back with earlier batches in
/// cumulative time). Paths for a query therefore depend on the composition
/// of its micro-batch — deterministic for a fixed submission/poll sequence,
/// exactly like re-running `Accelerator::run` on the same batches.
///
/// # Example
///
/// ```
/// use grw_algo::{PreparedGraph, QuerySet, WalkBackend, WalkSpec};
/// use grw_graph::CsrGraph;
/// use ridgewalker::{Accelerator, AcceleratorConfig};
///
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], true);
/// let spec = WalkSpec::urw(8);
/// let prepared = PreparedGraph::new(g, &spec).unwrap();
/// let queries = QuerySet::random(4, 16, 3);
/// let accel = Accelerator::new(AcceleratorConfig::new().pipelines(2));
/// let mut backend = accel.backend(&prepared, &spec);
/// assert_eq!(backend.submit(queries.queries()), 16);
/// let paths = backend.drain();
/// assert_eq!(paths.len(), 16);
/// assert!(backend.telemetry().cycles.unwrap() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct AcceleratorBackend<P> {
    accel: Accelerator,
    prepared: P,
    spec: WalkSpec,
    queued: Vec<WalkQuery>,
    ready: VecDeque<WalkPath>,
    queue_cap: usize,
    stats: CumulativeStats,
}

/// Merged counters across micro-batches.
///
/// Everything merges as raw sums — counts, simulated seconds, moved
/// gigabytes, pipeline-cycle breakdowns — and every reported ratio is
/// re-derived from the sums. Merging the ratios themselves (or weighting
/// them by total machine cycles) skews cumulative reports whenever batch
/// shape, drain-tail length, clock or footprint varies between batches.
#[derive(Debug, Clone, Copy, Default)]
struct CumulativeStats {
    batches: u64,
    cycles: u64,
    steps: u64,
    random_txns: u64,
    bytes_moved: u64,
    /// Raw busy/bubble/drained pipeline-cycle counts, summed per batch.
    pipeline: UtilizationMeter,
    terminations: TerminationBreakdown,
    /// Simulated seconds across batches (each batch's cycles through its
    /// own clock), the common denominator for merged rates.
    seconds: f64,
    /// Traversed-edge footprint in GB (effective bandwidth × seconds).
    footprint_gb: f64,
    /// Time-weighted peak-bandwidth integral (peak GB/s × seconds).
    peak_gb: f64,
    /// Sampling-kernel counters summed across micro-batches.
    sampling: SamplingCounters,
}

impl CumulativeStats {
    /// Time-weighted merged clock in MHz (cycles per simulated second).
    fn clock_mhz(&self) -> f64 {
        if self.seconds > 0.0 {
            self.cycles as f64 / (self.seconds * 1e6)
        } else {
            0.0
        }
    }
}

impl Accelerator {
    /// Opens a streaming backend bound to a prepared graph and spec.
    pub fn backend<P: Borrow<PreparedGraph>>(
        &self,
        prepared: P,
        spec: &WalkSpec,
    ) -> AcceleratorBackend<P> {
        AcceleratorBackend {
            accel: self.clone(),
            prepared,
            spec: spec.clone(),
            queued: Vec::new(),
            ready: VecDeque::new(),
            queue_cap: DEFAULT_QUEUE_CAPACITY,
            stats: CumulativeStats::default(),
        }
    }
}

impl<P: Borrow<PreparedGraph>> AcceleratorBackend<P> {
    /// Bounds the micro-batch buffer (backpressure point).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        self.queue_cap = cap;
        self
    }

    /// The accelerator configuration driving this backend.
    pub fn accelerator(&self) -> &Accelerator {
        &self.accel
    }

    /// Micro-batches simulated so far.
    pub fn batches_run(&self) -> u64 {
        self.stats.batches
    }

    /// The cumulative run report across every micro-batch simulated so
    /// far: cycles/steps/transactions summed, ratios re-derived from the
    /// summed raw pipeline-cycle counts, throughput and bandwidth
    /// recomputed from the totals over total simulated time. `paths` is
    /// empty — completed paths stream out of
    /// [`poll`](WalkBackend::poll)/[`drain`](WalkBackend::drain).
    pub fn cumulative_report(&self) -> RunReport {
        let s = &self.stats;
        let (msteps, eff_bw, peak_bw) = if s.seconds > 0.0 {
            (
                s.steps as f64 / (s.seconds * 1e6),
                s.footprint_gb / s.seconds,
                s.peak_gb / s.seconds,
            )
        } else {
            (0.0, 0.0, 0.0)
        };
        RunReport {
            paths: Vec::new(),
            cycles: s.cycles,
            steps: s.steps,
            clock_mhz: s.clock_mhz(),
            msteps_per_sec: msteps,
            bubble_ratio: s.pipeline.bubble_ratio(),
            pipeline_utilization: s.pipeline.utilization(),
            pipeline_cycles: s.pipeline,
            random_txns: s.random_txns,
            bytes_moved: s.bytes_moved,
            effective_bandwidth_gbs: eff_bw,
            peak_bandwidth_gbs: peak_bw,
            bandwidth_utilization: if peak_bw > 0.0 {
                (eff_bw / peak_bw).clamp(0.0, 1.0)
            } else {
                0.0
            },
            terminations: s.terminations,
            sampling: s.sampling,
        }
    }

    /// Simulates the currently queued micro-batch, if any.
    fn run_queued(&mut self) {
        if self.queued.is_empty() {
            return;
        }
        let report = self
            .accel
            .run(self.prepared.borrow(), &self.spec, &self.queued);
        self.queued.clear();
        let s = &mut self.stats;
        s.batches += 1;
        s.cycles += report.cycles;
        s.steps += report.steps;
        s.random_txns += report.random_txns;
        s.bytes_moved += report.bytes_moved;
        s.pipeline.merge(&report.pipeline_cycles);
        s.terminations.max_length += report.terminations.max_length;
        s.terminations.dead_end += report.terminations.dead_end;
        s.terminations.teleport += report.terminations.teleport;
        s.terminations.no_typed_neighbor += report.terminations.no_typed_neighbor;
        let secs = if report.clock_mhz > 0.0 {
            report.cycles as f64 / (report.clock_mhz * 1e6)
        } else {
            0.0
        };
        s.seconds += secs;
        s.footprint_gb += report.effective_bandwidth_gbs * secs;
        s.peak_gb += report.peak_bandwidth_gbs * secs;
        s.sampling.merge(&report.sampling);
        self.ready.extend(report.paths);
    }
}

impl<P: Borrow<PreparedGraph>> WalkBackend for AcceleratorBackend<P> {
    fn submit(&mut self, queries: &[WalkQuery]) -> usize {
        let room = self.queue_cap.saturating_sub(self.queued.len());
        let n = room.min(queries.len());
        self.queued.extend_from_slice(&queries[..n]);
        n
    }

    fn poll(&mut self) -> Vec<WalkPath> {
        self.run_queued();
        self.ready.drain(..).collect()
    }

    fn drain(&mut self) -> Vec<WalkPath> {
        self.poll()
    }

    fn capacity_hint(&self) -> usize {
        self.queue_cap.saturating_sub(self.queued.len())
    }

    fn in_flight(&self) -> usize {
        self.queued.len() + self.ready.len()
    }

    fn telemetry(&self) -> BackendTelemetry {
        BackendTelemetry {
            steps: self.stats.steps,
            cycles: Some(self.stats.cycles),
            clock_mhz: if self.stats.batches > 0 {
                Some(self.stats.clock_mhz())
            } else {
                None
            },
            pipeline: Some(self.stats.pipeline),
            sampling: self.stats.sampling,
            ..BackendTelemetry::default()
        }
    }

    fn backend_class(&self) -> grw_algo::BackendClass {
        grw_algo::BackendClass::Accelerator
    }

    fn cost_hint(&self) -> f64 {
        self.prepared.borrow().sampler_cost_factor()
            / f64::from(self.accel.config().effective_pipelines().max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use grw_algo::{run_streamed, QuerySet};
    use grw_graph::generators::{Dataset, ScaleFactor};
    use grw_sim::FpgaPlatform;

    fn accel() -> Accelerator {
        Accelerator::new(
            AcceleratorConfig::new()
                .platform(FpgaPlatform::AlveoU55c)
                .pipelines(4),
        )
    }

    #[test]
    fn single_batch_streaming_is_bit_identical_to_run() {
        let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
        let spec = grw_algo::WalkSpec::urw(16);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), 128, 3);
        let legacy = accel().run(&p, &spec, qs.queries());
        let mut backend = accel().backend(&p, &spec);
        let streamed = run_streamed(&mut backend, qs.queries());
        assert_eq!(legacy.paths, streamed);
        let cum = backend.cumulative_report();
        assert_eq!(cum.cycles, legacy.cycles);
        assert_eq!(cum.steps, legacy.steps);
        assert_eq!(cum.random_txns, legacy.random_txns);
        assert_eq!(cum.bytes_moved, legacy.bytes_moved);
        assert!((cum.msteps_per_sec - legacy.msteps_per_sec).abs() < 1e-9);
        assert!((cum.bubble_ratio - legacy.bubble_ratio).abs() < 1e-12);
        assert!((cum.bandwidth_utilization - legacy.bandwidth_utilization).abs() < 1e-12);
    }

    #[test]
    fn micro_batches_accumulate_cycles_and_steps() {
        let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
        let spec = grw_algo::WalkSpec::urw(12);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), 90, 5);
        let mut backend = accel().backend(&p, &spec);
        let mut total = 0;
        for chunk in qs.queries().chunks(30) {
            assert_eq!(backend.submit(chunk), 30);
            total += backend.poll().len();
        }
        total += backend.drain().len();
        assert_eq!(total, 90);
        assert_eq!(backend.batches_run(), 3);
        let t = backend.telemetry();
        assert!(t.cycles.unwrap() > 0);
        assert_eq!(
            t.steps,
            backend.cumulative_report().steps,
            "telemetry and report agree"
        );
        assert_eq!(backend.in_flight(), 0);
    }

    #[test]
    fn two_batch_merge_is_cycle_and_step_weighted() {
        let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
        let spec = grw_algo::WalkSpec::urw(12);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), 160, 5);
        // Unequal batch shapes → unequal fill/drain shares per batch.
        let (first, second) = qs.queries().split_at(130);
        let a = accel().run(&p, &spec, first);
        let b = accel().run(&p, &spec, second);
        let mut backend = accel().backend(&p, &spec);
        assert_eq!(backend.submit(first), first.len());
        backend.poll();
        assert_eq!(backend.submit(second), second.len());
        backend.poll();
        assert_eq!(backend.batches_run(), 2);
        let cum = backend.cumulative_report();

        // Additive counters sum.
        assert_eq!(cum.cycles, a.cycles + b.cycles);
        assert_eq!(cum.steps, a.steps + b.steps);
        assert_eq!(cum.random_txns, a.random_txns + b.random_txns);
        assert_eq!(cum.bytes_moved, a.bytes_moved + b.bytes_moved);

        // Same platform throughout: the merged clock is the platform clock
        // (previously last-batch-wins, silently wrong for mixed merges).
        assert!((cum.clock_mhz - a.clock_mhz).abs() < 1e-6);
        let want_msteps = (a.steps + b.steps) as f64 / (a.cycles + b.cycles) as f64 * a.clock_mhz;
        assert!((cum.msteps_per_sec - want_msteps).abs() < 1e-6);

        // Ratio quantities re-derived from summed raw pipeline-cycles, not
        // averaged ratios weighted by total machine cycles.
        let busy = a.pipeline_cycles.busy() + b.pipeline_cycles.busy();
        let bub = a.pipeline_cycles.bubbles() + b.pipeline_cycles.bubbles();
        let drained = a.pipeline_cycles.drained() + b.pipeline_cycles.drained();
        assert_eq!(cum.pipeline_cycles.busy(), busy);
        assert_eq!(cum.pipeline_cycles.bubbles(), bub);
        assert_eq!(cum.pipeline_cycles.drained(), drained);
        assert!((cum.bubble_ratio - bub as f64 / (busy + bub) as f64).abs() < 1e-12);
        assert!(
            (cum.pipeline_utilization - busy as f64 / (busy + bub + drained) as f64).abs() < 1e-12
        );

        // Bandwidth re-derived from totals over total simulated time.
        assert!((cum.peak_bandwidth_gbs - a.peak_bandwidth_gbs).abs() < 1e-9);
        let secs = (a.cycles + b.cycles) as f64 / (a.clock_mhz * 1e6);
        let want_eff = (a.effective_bandwidth_gbs * a.cycles as f64
            + b.effective_bandwidth_gbs * b.cycles as f64)
            / (a.clock_mhz * 1e6)
            / secs;
        assert!((cum.effective_bandwidth_gbs - want_eff).abs() < 1e-9);
    }

    #[test]
    fn backpressure_bounds_the_queue() {
        let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
        let spec = grw_algo::WalkSpec::urw(4);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), 64, 1);
        let mut backend = accel().backend(&p, &spec).queue_capacity(10);
        assert_eq!(backend.submit(qs.queries()), 10);
        assert_eq!(backend.capacity_hint(), 0);
        assert_eq!(backend.submit(qs.queries()), 0);
        assert_eq!(backend.poll().len(), 10);
        assert_eq!(backend.capacity_hint(), 10);
    }
}
