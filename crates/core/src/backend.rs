//! Streaming backend over the cycle-level accelerator model.
//!
//! The hardware streams tasks hop-by-hop; the software interface streams
//! *queries* micro-batch by micro-batch: submissions accumulate until a
//! [`poll`](grw_algo::WalkBackend::poll), which runs the accumulated batch
//! through the cycle simulation and banks its report. Cumulative counters
//! (cycles, steps, transactions, bytes) merge across micro-batches so a
//! serving layer sees one continuous simulated machine.

use crate::accelerator::Accelerator;
use crate::report::{RunReport, TerminationBreakdown};
use grw_algo::{BackendTelemetry, PreparedGraph, WalkBackend, WalkPath, WalkQuery, WalkSpec};
use std::borrow::Borrow;
use std::collections::VecDeque;

/// Default bound on queries the backend buffers before pushing back.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1 << 20;

/// An [`Accelerator`] bound to a graph and spec, exposed as a streaming
/// [`WalkBackend`].
///
/// Micro-batch semantics: all queries accepted since the last poll are
/// simulated as one continuous run (back-to-back with earlier batches in
/// cumulative time). Paths for a query therefore depend on the composition
/// of its micro-batch — deterministic for a fixed submission/poll sequence,
/// exactly like re-running `Accelerator::run` on the same batches.
///
/// # Example
///
/// ```
/// use grw_algo::{PreparedGraph, QuerySet, WalkBackend, WalkSpec};
/// use grw_graph::CsrGraph;
/// use ridgewalker::{Accelerator, AcceleratorConfig};
///
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], true);
/// let spec = WalkSpec::urw(8);
/// let prepared = PreparedGraph::new(g, &spec).unwrap();
/// let queries = QuerySet::random(4, 16, 3);
/// let accel = Accelerator::new(AcceleratorConfig::new().pipelines(2));
/// let mut backend = accel.backend(&prepared, &spec);
/// assert_eq!(backend.submit(queries.queries()), 16);
/// let paths = backend.drain();
/// assert_eq!(paths.len(), 16);
/// assert!(backend.telemetry().cycles.unwrap() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct AcceleratorBackend<P> {
    accel: Accelerator,
    prepared: P,
    spec: WalkSpec,
    queued: Vec<WalkQuery>,
    ready: VecDeque<WalkPath>,
    queue_cap: usize,
    stats: CumulativeStats,
}

/// Merged counters across micro-batches.
#[derive(Debug, Clone, Copy, Default)]
struct CumulativeStats {
    batches: u64,
    cycles: u64,
    steps: u64,
    random_txns: u64,
    bytes_moved: u64,
    /// Cycle-weighted sums for the ratio quantities.
    bubble_weighted: f64,
    util_weighted: f64,
    terminations: TerminationBreakdown,
    clock_mhz: f64,
    peak_bandwidth_gbs: f64,
    /// Bytes per step of traversed-edge footprint (spec-dependent),
    /// recorded from the batch reports for bandwidth recomputation.
    footprint_per_step: f64,
}

impl Accelerator {
    /// Opens a streaming backend bound to a prepared graph and spec.
    pub fn backend<P: Borrow<PreparedGraph>>(
        &self,
        prepared: P,
        spec: &WalkSpec,
    ) -> AcceleratorBackend<P> {
        AcceleratorBackend {
            accel: self.clone(),
            prepared,
            spec: spec.clone(),
            queued: Vec::new(),
            ready: VecDeque::new(),
            queue_cap: DEFAULT_QUEUE_CAPACITY,
            stats: CumulativeStats::default(),
        }
    }
}

impl<P: Borrow<PreparedGraph>> AcceleratorBackend<P> {
    /// Bounds the micro-batch buffer (backpressure point).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        self.queue_cap = cap;
        self
    }

    /// The accelerator configuration driving this backend.
    pub fn accelerator(&self) -> &Accelerator {
        &self.accel
    }

    /// Micro-batches simulated so far.
    pub fn batches_run(&self) -> u64 {
        self.stats.batches
    }

    /// The cumulative run report across every micro-batch simulated so
    /// far: cycles/steps/transactions summed, ratio quantities
    /// cycle-weighted, throughput and bandwidth recomputed from the
    /// totals. `paths` is empty — completed paths stream out of
    /// [`poll`](WalkBackend::poll)/[`drain`](WalkBackend::drain).
    pub fn cumulative_report(&self) -> RunReport {
        let s = &self.stats;
        let msteps = if s.cycles == 0 {
            0.0
        } else {
            s.steps as f64 / s.cycles as f64 * s.clock_mhz
        };
        let eff_bw = msteps * s.footprint_per_step / 1000.0;
        let (bubble, util) = if s.cycles == 0 {
            (0.0, 0.0)
        } else {
            (
                s.bubble_weighted / s.cycles as f64,
                s.util_weighted / s.cycles as f64,
            )
        };
        RunReport {
            paths: Vec::new(),
            cycles: s.cycles,
            steps: s.steps,
            clock_mhz: s.clock_mhz,
            msteps_per_sec: msteps,
            bubble_ratio: bubble,
            pipeline_utilization: util,
            random_txns: s.random_txns,
            bytes_moved: s.bytes_moved,
            effective_bandwidth_gbs: eff_bw,
            peak_bandwidth_gbs: s.peak_bandwidth_gbs,
            bandwidth_utilization: if s.peak_bandwidth_gbs > 0.0 {
                (eff_bw / s.peak_bandwidth_gbs).clamp(0.0, 1.0)
            } else {
                0.0
            },
            terminations: s.terminations,
        }
    }

    /// Simulates the currently queued micro-batch, if any.
    fn run_queued(&mut self) {
        if self.queued.is_empty() {
            return;
        }
        let report = self
            .accel
            .run(self.prepared.borrow(), &self.spec, &self.queued);
        self.queued.clear();
        let s = &mut self.stats;
        s.batches += 1;
        s.cycles += report.cycles;
        s.steps += report.steps;
        s.random_txns += report.random_txns;
        s.bytes_moved += report.bytes_moved;
        s.bubble_weighted += report.bubble_ratio * report.cycles as f64;
        s.util_weighted += report.pipeline_utilization * report.cycles as f64;
        s.terminations.max_length += report.terminations.max_length;
        s.terminations.dead_end += report.terminations.dead_end;
        s.terminations.teleport += report.terminations.teleport;
        s.terminations.no_typed_neighbor += report.terminations.no_typed_neighbor;
        s.clock_mhz = report.clock_mhz;
        s.peak_bandwidth_gbs = report.peak_bandwidth_gbs;
        if report.msteps_per_sec > 0.0 {
            // footprint = eff_bw * 1000 / msteps, constant per spec.
            s.footprint_per_step = report.effective_bandwidth_gbs * 1000.0 / report.msteps_per_sec;
        }
        self.ready.extend(report.paths);
    }
}

impl<P: Borrow<PreparedGraph>> WalkBackend for AcceleratorBackend<P> {
    fn submit(&mut self, queries: &[WalkQuery]) -> usize {
        let room = self.queue_cap.saturating_sub(self.queued.len());
        let n = room.min(queries.len());
        self.queued.extend_from_slice(&queries[..n]);
        n
    }

    fn poll(&mut self) -> Vec<WalkPath> {
        self.run_queued();
        self.ready.drain(..).collect()
    }

    fn drain(&mut self) -> Vec<WalkPath> {
        self.poll()
    }

    fn capacity_hint(&self) -> usize {
        self.queue_cap.saturating_sub(self.queued.len())
    }

    fn in_flight(&self) -> usize {
        self.queued.len() + self.ready.len()
    }

    fn telemetry(&self) -> BackendTelemetry {
        BackendTelemetry {
            steps: self.stats.steps,
            cycles: Some(self.stats.cycles),
            clock_mhz: if self.stats.batches > 0 {
                Some(self.stats.clock_mhz)
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use grw_algo::{run_streamed, QuerySet};
    use grw_graph::generators::{Dataset, ScaleFactor};
    use grw_sim::FpgaPlatform;

    fn accel() -> Accelerator {
        Accelerator::new(
            AcceleratorConfig::new()
                .platform(FpgaPlatform::AlveoU55c)
                .pipelines(4),
        )
    }

    #[test]
    fn single_batch_streaming_is_bit_identical_to_run() {
        let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
        let spec = grw_algo::WalkSpec::urw(16);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), 128, 3);
        let legacy = accel().run(&p, &spec, qs.queries());
        let mut backend = accel().backend(&p, &spec);
        let streamed = run_streamed(&mut backend, qs.queries());
        assert_eq!(legacy.paths, streamed);
        let cum = backend.cumulative_report();
        assert_eq!(cum.cycles, legacy.cycles);
        assert_eq!(cum.steps, legacy.steps);
        assert_eq!(cum.random_txns, legacy.random_txns);
        assert_eq!(cum.bytes_moved, legacy.bytes_moved);
        assert!((cum.msteps_per_sec - legacy.msteps_per_sec).abs() < 1e-9);
        assert!((cum.bubble_ratio - legacy.bubble_ratio).abs() < 1e-12);
        assert!((cum.bandwidth_utilization - legacy.bandwidth_utilization).abs() < 1e-12);
    }

    #[test]
    fn micro_batches_accumulate_cycles_and_steps() {
        let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
        let spec = grw_algo::WalkSpec::urw(12);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), 90, 5);
        let mut backend = accel().backend(&p, &spec);
        let mut total = 0;
        for chunk in qs.queries().chunks(30) {
            assert_eq!(backend.submit(chunk), 30);
            total += backend.poll().len();
        }
        total += backend.drain().len();
        assert_eq!(total, 90);
        assert_eq!(backend.batches_run(), 3);
        let t = backend.telemetry();
        assert!(t.cycles.unwrap() > 0);
        assert_eq!(
            t.steps,
            backend.cumulative_report().steps,
            "telemetry and report agree"
        );
        assert_eq!(backend.in_flight(), 0);
    }

    #[test]
    fn backpressure_bounds_the_queue() {
        let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
        let spec = grw_algo::WalkSpec::urw(4);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), 64, 1);
        let mut backend = accel().backend(&p, &spec).queue_capacity(10);
        assert_eq!(backend.submit(qs.queries()), 10);
        assert_eq!(backend.capacity_hint(), 0);
        assert_eq!(backend.submit(qs.queries()), 0);
        assert_eq!(backend.poll().len(), 10);
        assert_eq!(backend.capacity_hint(), 10);
    }
}
