//! Analytic FPGA resource and frequency model (Table IV).
//!
//! Vivado reports are obviously out of reach for a software reproduction,
//! so resource consumption is modelled as a calibrated cost table: a fixed
//! platform shell, the zero-bubble scheduler fabric, and per-pipeline
//! module costs that depend on the sampling method and RP-entry width.
//! Constants are fitted to Table IV of the paper (U55C, 16 pipelines) and
//! the §VIII-F standalone scheduler numbers (≤1.8% LUTs at 450 MHz); the
//! model's value is showing *where* resources go and reproducing the
//! relative ordering across kernels, not gate-level truth.

use grw_algo::{Node2VecMethod, WalkSpec};

/// Absolute resource totals of the VU47P device on the Alveo U55C.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceResources {
    /// Lookup tables.
    pub luts: u64,
    /// Flip-flop registers.
    pub regs: u64,
    /// BRAM36 blocks.
    pub brams: u64,
    /// DSP slices.
    pub dsps: u64,
}

/// The U55C's VU47P totals.
pub const U55C_DEVICE: DeviceResources = DeviceResources {
    luts: 1_303_680,
    regs: 2_607_360,
    brams: 2_016,
    dsps: 9_024,
};

/// Resource usage of one design (absolute counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Lookup tables.
    pub luts: u64,
    /// Registers.
    pub regs: u64,
    /// BRAM36 blocks.
    pub brams: u64,
    /// DSP slices.
    pub dsps: u64,
}

impl ResourceUsage {
    fn add(&mut self, other: ResourceUsage, times: u64) {
        self.luts += other.luts * times;
        self.regs += other.regs * times;
        self.brams += other.brams * times;
        self.dsps += other.dsps * times;
    }

    /// Utilization percentages against a device.
    pub fn percent_of(&self, device: DeviceResources) -> ResourcePercent {
        ResourcePercent {
            luts: 100.0 * self.luts as f64 / device.luts as f64,
            regs: 100.0 * self.regs as f64 / device.regs as f64,
            brams: 100.0 * self.brams as f64 / device.brams as f64,
            dsps: 100.0 * self.dsps as f64 / device.dsps as f64,
        }
    }
}

/// Utilization percentages (the unit Table IV reports).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourcePercent {
    /// LUT %.
    pub luts: f64,
    /// Register %.
    pub regs: f64,
    /// BRAM %.
    pub brams: f64,
    /// DSP %.
    pub dsps: f64,
}

/// A full design estimate: resources plus achievable frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignEstimate {
    /// Total resource usage.
    pub usage: ResourceUsage,
    /// Achievable clock in MHz (min over module fmax).
    pub frequency_mhz: f64,
}

// ---- Calibrated module costs (per instance) --------------------------------

/// Static platform shell: PCIe/XDMA, HBM controllers, clocking.
const SHELL: ResourceUsage = ResourceUsage {
    luts: 80_000,
    regs: 120_000,
    brams: 40,
    dsps: 10,
};

/// The zero-bubble scheduler + both butterfly fabrics (§VIII-F: ≤1.8% LUTs).
const SCHEDULER: ResourceUsage = ResourceUsage {
    luts: 23_500,
    regs: 30_000,
    brams: 0, // LUT-based shallow FIFOs
    dsps: 0,
};

/// One asynchronous pipeline's fixed part: RA/CA access engines (metadata
/// queues in BRAM), control, theorem-sized FIFOs, ThundeRiNG instance.
const PIPELINE_BASE: ResourceUsage = ResourceUsage {
    luts: 30_000,
    regs: 29_700,
    brams: 21,
    dsps: 12,
};

/// Per-pipeline sampling-module increments, by kernel.
fn sampler_cost(spec: &WalkSpec) -> ResourceUsage {
    match spec {
        WalkSpec::Urw { .. } => ResourceUsage {
            luts: 4_300,
            regs: 0,
            brams: 1,
            dsps: 0,
        },
        WalkSpec::Ppr { .. } => ResourceUsage {
            luts: 13_600,
            regs: 9_500,
            brams: 1,
            dsps: 0,
        },
        WalkSpec::DeepWalk { .. } => ResourceUsage {
            luts: 18_700,
            regs: 13_000,
            brams: 26,
            dsps: 12,
        },
        WalkSpec::Node2Vec { method, .. } => match method {
            Node2VecMethod::Rejection | Node2VecMethod::Reservoir => ResourceUsage {
                luts: 28_200,
                regs: 28_100,
                brams: 22,
                dsps: 29,
            },
        },
        WalkSpec::MetaPath { .. } => ResourceUsage {
            luts: 24_000,
            regs: 24_000,
            brams: 20,
            dsps: 24,
        },
    }
}

/// Module fmax values in MHz; the design clock is their minimum.
fn module_fmax(spec: &WalkSpec) -> [f64; 3] {
    let sampler = match spec {
        WalkSpec::Node2Vec { .. } => 320.0,
        _ => 340.0,
    };
    // [pipeline datapath, scheduler fabric, sampler]
    [320.0, 450.0, sampler]
}

/// Estimates the full design for `spec` with `pipelines` pipelines.
///
/// # Panics
///
/// Panics if `pipelines == 0`.
///
/// # Example
///
/// ```
/// use grw_algo::WalkSpec;
/// use ridgewalker::resource::{estimate, U55C_DEVICE};
///
/// let e = estimate(&WalkSpec::urw(80), 16);
/// let pct = e.usage.percent_of(U55C_DEVICE);
/// assert!((pct.luts - 50.1).abs() < 3.0); // Table IV: URW 50.1%
/// ```
pub fn estimate(spec: &WalkSpec, pipelines: u32) -> DesignEstimate {
    assert!(pipelines > 0, "need at least one pipeline");
    let mut usage = ResourceUsage::default();
    usage.add(SHELL, 1);
    usage.add(SCHEDULER, 1);
    usage.add(PIPELINE_BASE, u64::from(pipelines));
    usage.add(sampler_cost(spec), u64::from(pipelines));
    let frequency_mhz = module_fmax(spec).into_iter().fold(f64::INFINITY, f64::min);
    DesignEstimate {
        usage,
        frequency_mhz,
    }
}

/// The standalone scheduler estimate (§VIII-F: independent profiling).
pub fn scheduler_standalone() -> DesignEstimate {
    DesignEstimate {
        usage: SCHEDULER,
        frequency_mhz: 450.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table IV targets: (LUT%, REG%, BRAM%, DSP%, MHz).
    fn table_iv() -> [(WalkSpec, f64, f64, f64, f64); 4] {
        [
            (WalkSpec::ppr(80), 61.1, 29.8, 19.5, 2.2),
            (WalkSpec::urw(80), 50.1, 24.0, 19.5, 2.2),
            (WalkSpec::deepwalk(80), 67.5, 32.3, 39.1, 4.4),
            (
                WalkSpec::node2vec(80, grw_algo::Node2VecMethod::Reservoir),
                79.1,
                41.6,
                36.0,
                7.3,
            ),
        ]
    }

    #[test]
    fn estimates_track_table_iv_within_tolerance() {
        for (spec, lut, reg, bram, dsp) in table_iv() {
            let pct = estimate(&spec, 16).usage.percent_of(U55C_DEVICE);
            assert!(
                (pct.luts - lut).abs() < 3.0,
                "{spec} LUT {0} vs {lut}",
                pct.luts
            );
            assert!(
                (pct.regs - reg).abs() < 3.0,
                "{spec} REG {0} vs {reg}",
                pct.regs
            );
            assert!(
                (pct.brams - bram).abs() < 4.0,
                "{spec} BRAM {0} vs {bram}",
                pct.brams
            );
            assert!(
                (pct.dsps - dsp).abs() < 2.0,
                "{spec} DSP {0} vs {dsp}",
                pct.dsps
            );
        }
    }

    #[test]
    fn all_kernels_close_timing_at_320mhz() {
        for (spec, ..) in table_iv() {
            assert_eq!(estimate(&spec, 16).frequency_mhz, 320.0, "{spec}");
        }
    }

    #[test]
    fn kernel_ordering_matches_the_paper() {
        // URW < PPR < DeepWalk < Node2Vec in LUTs.
        let luts: Vec<f64> = [
            WalkSpec::urw(80),
            WalkSpec::ppr(80),
            WalkSpec::deepwalk(80),
            WalkSpec::node2vec(80, grw_algo::Node2VecMethod::Reservoir),
        ]
        .iter()
        .map(|s| estimate(s, 16).usage.percent_of(U55C_DEVICE).luts)
        .collect();
        assert!(luts.windows(2).all(|w| w[0] < w[1]), "{luts:?}");
    }

    #[test]
    fn scheduler_is_tiny_and_fast() {
        let s = scheduler_standalone();
        let pct = s.usage.percent_of(U55C_DEVICE);
        assert!(pct.luts <= 1.81, "scheduler LUTs {}%", pct.luts);
        assert_eq!(s.frequency_mhz, 450.0);
    }

    #[test]
    fn memory_bound_design_leaves_headroom() {
        // §VIII-F: the design leaves ample logic for downstream kernels.
        for (spec, ..) in table_iv() {
            let pct = estimate(&spec, 16).usage.percent_of(U55C_DEVICE);
            assert!(pct.regs < 50.0, "{spec}");
            assert!(pct.dsps < 10.0, "{spec}");
        }
    }

    #[test]
    fn resources_scale_with_pipelines() {
        let small = estimate(&WalkSpec::urw(80), 4).usage.luts;
        let large = estimate(&WalkSpec::urw(80), 16).usage.luts;
        assert!(large > small);
        assert!(large < 4 * small, "shared shell must not scale");
    }
}
