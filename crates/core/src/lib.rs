//! # RidgeWalker: a cycle-level model of the perfectly pipelined GRW accelerator
//!
//! This crate is the paper's primary contribution, reproduced as a
//! cycle-accurate architectural simulator (no FPGA required — see
//! `DESIGN.md` for the substitution argument). It implements:
//!
//! * **Markov task decomposition** ([`Task`]): each walk hop is a stateless
//!   ≤512-bit tuple ⟨v_last, v_prev, query id, step⟩ that any pipeline can
//!   execute (Fig. 5a). Randomness is counter-based (Philox keyed by
//!   `(query, step)`), so a task draws identical samples wherever it runs.
//! * **Asynchronous memory-access engine** ([`AsyncAccessEngine`]): a
//!   non-blocking request/response proxy with a transaction-id slab and
//!   metadata queue, sustaining up to 128 outstanding requests per channel
//!   (Fig. 6). A blocking mode (1 outstanding) provides the ablation
//!   baseline of Fig. 11.
//! * **Zero-bubble scheduler** ([`scheduler`]): the branch-free
//!   [`scheduler::Dispatcher`] (Algorithm VI.1) and [`scheduler::Merger`]
//!   (Algorithm VI.2), composed into the N-to-N butterfly
//!   [`scheduler::ButterflyBalancer`] of Fig. 7b, with FIFO depths
//!   `1 + 4·log2(N)` from Theorem VI.1.
//! * **Data-aware task routing** ([`TaskRouter`]): a butterfly interconnect
//!   delivering each task to the memory channel owning its vertex.
//! * **The accelerator** ([`Accelerator`]): N asynchronous pipelines
//!   (Row Access → Sampling → Column Access) over per-pipeline HBM/DDR
//!   channel pairs, with dynamic per-hop reassignment — plus the static
//!   bulk-synchronous mode used as the Fig. 11 ablation baseline.
//! * **Streaming backends**: the accelerator behind the
//!   `grw_algo::WalkBackend` interface two ways.
//!   [`AcceleratorBackend`] simulates one detached micro-batch per poll
//!   (with a cumulative report merged from raw counts);
//!   [`IncrementalAcceleratorBackend`] persists one running machine
//!   across polls, so submissions join the live pipeline at the next
//!   issue slot instead of waiting for a batch boundary — no per-batch
//!   fill/drain bubbles under sustained load. The `grw_service` serving
//!   layer shards over either.
//! * **Resource & frequency model** ([`resource`]): the analytic cost table
//!   reproducing Table IV.
//!
//! # Example
//!
//! ```
//! use grw_algo::{PreparedGraph, QuerySet, WalkSpec};
//! use grw_graph::CsrGraph;
//! use ridgewalker::{Accelerator, AcceleratorConfig};
//!
//! let g = CsrGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (4, 5), (5, 1)], false);
//! let spec = WalkSpec::urw(16);
//! let prepared = PreparedGraph::new(g, &spec).unwrap();
//! let queries = QuerySet::random(8, 32, 1);
//! let config = AcceleratorConfig::new().pipelines(4);
//! let report = Accelerator::new(config).run(&prepared, &spec, queries.queries());
//! assert_eq!(report.paths.len(), 32);
//! assert!(report.msteps_per_sec > 0.0);
//! ```

mod accelerator;
mod backend;
mod config;
mod engine;
mod incremental;
pub mod report;
pub mod resource;
mod router;
pub mod scheduler;
mod task;
pub mod verify;

pub use accelerator::Accelerator;
pub use backend::AcceleratorBackend;
pub use config::{AcceleratorConfig, MemoryMode, ScheduleMode};
pub use engine::AsyncAccessEngine;
pub use incremental::{IncrementalAcceleratorBackend, MachineOccupancy};
pub use report::{RunReport, TerminationBreakdown};
pub use router::TaskRouter;
pub use task::{Task, NO_PREV};
