//! Run reports: the measurement quantities of the paper's evaluation.

use grw_algo::WalkPath;
use grw_sim::stats::{SamplingCounters, UtilizationMeter};

/// Why walks ended, tallied over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TerminationBreakdown {
    /// Walks that reached the maximum length.
    pub max_length: u64,
    /// Walks that hit a zero-out-degree vertex.
    pub dead_end: u64,
    /// PPR walks ended by the teleport coin.
    pub teleport: u64,
    /// MetaPath walks with no type-matching neighbor.
    pub no_typed_neighbor: u64,
}

impl TerminationBreakdown {
    /// Total completed walks.
    pub fn total(&self) -> u64 {
        self.max_length + self.dead_end + self.teleport + self.no_typed_neighbor
    }

    /// Fraction of walks that ended early (anything but max-length) —
    /// the irregularity driver of Fig. 1b.
    pub fn early_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (t - self.max_length) as f64 / t as f64
        }
    }
}

/// The result of executing a query set on a simulated engine.
///
/// All performance numbers use the paper's definitions: throughput is
/// MStep/s (visited vertices per second, §VIII-A), effective bandwidth is
/// the traversed-edge footprint over time (§III-B), and utilization is
/// measured against the Eq. (1) random-access peak.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// One path per query, in input order.
    pub paths: Vec<WalkPath>,
    /// Simulated cycles to drain every query.
    pub cycles: u64,
    /// Total hops executed.
    pub steps: u64,
    /// Core clock used for time conversion (MHz).
    pub clock_mhz: f64,
    /// Throughput in MStep/s.
    pub msteps_per_sec: f64,
    /// Pipeline bubble ratio: starved cycles / (busy + starved).
    pub bubble_ratio: f64,
    /// Fraction of pipeline-cycles doing useful work.
    pub pipeline_utilization: f64,
    /// Raw pipeline-cycle counts behind the two ratios above
    /// (busy / bubble / drained, summed over pipelines). Reports merge by
    /// summing these counts and re-deriving the ratios — weighting the
    /// ratios by total machine cycles over-counts runs with long drain
    /// tails.
    pub pipeline_cycles: UtilizationMeter,
    /// Random 64-bit transactions issued across all channels.
    pub random_txns: u64,
    /// Bytes moved (traversed-edge footprint).
    pub bytes_moved: u64,
    /// Effective bandwidth in GB/s.
    pub effective_bandwidth_gbs: f64,
    /// Eq. (1) peak random-access bandwidth of the platform, GB/s.
    pub peak_bandwidth_gbs: f64,
    /// `effective / peak` bandwidth utilization.
    pub bandwidth_utilization: f64,
    /// Why walks ended.
    pub terminations: TerminationBreakdown,
    /// Sampling-kernel counters (rejection trials, alias builds,
    /// second-order edge-cache hits/evictions) from the machine's sampler
    /// runtime.
    pub sampling: SamplingCounters,
}

impl RunReport {
    /// Mean random transactions per executed step.
    pub fn txns_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.random_txns as f64 / self.steps as f64
        }
    }

    /// Speedup of this run over a baseline run (by step throughput).
    ///
    /// # Panics
    ///
    /// Panics if the baseline throughput is zero.
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        assert!(
            baseline.msteps_per_sec > 0.0,
            "baseline has zero throughput"
        );
        self.msteps_per_sec / baseline.msteps_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(msteps: f64) -> RunReport {
        RunReport {
            paths: Vec::new(),
            cycles: 100,
            steps: 50,
            clock_mhz: 320.0,
            msteps_per_sec: msteps,
            bubble_ratio: 0.0,
            pipeline_utilization: 1.0,
            pipeline_cycles: UtilizationMeter::from_counts(100, 0, 0),
            random_txns: 100,
            bytes_moved: 800,
            effective_bandwidth_gbs: 1.0,
            peak_bandwidth_gbs: 38.4,
            bandwidth_utilization: 1.0 / 38.4,
            terminations: TerminationBreakdown::default(),
            sampling: SamplingCounters::default(),
        }
    }

    #[test]
    fn txns_per_step_divides() {
        let r = dummy(100.0);
        assert!((r.txns_per_step() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_a_ratio() {
        let fast = dummy(200.0);
        let slow = dummy(50.0);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn early_fraction_math() {
        let t = TerminationBreakdown {
            max_length: 60,
            dead_end: 30,
            teleport: 10,
            no_typed_neighbor: 0,
        };
        assert_eq!(t.total(), 100);
        assert!((t.early_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(TerminationBreakdown::default().early_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero throughput")]
    fn speedup_over_zero_panics() {
        let _ = dummy(1.0).speedup_over(&dummy(0.0));
    }
}
