//! The Zero-Bubble Query Scheduler (§VI, Fig. 7).
//!
//! Three cooperating pieces, exactly as in the paper:
//!
//! * [`Dispatcher`] — Algorithm VI.1: routes one input stream onto two
//!   output channels, alternating by a one-bit *not-last-served* state and
//!   honouring backpressure; O(1) per decision, fully pipelined.
//! * [`Merger`] — Algorithm VI.2: merges two input streams into one output,
//!   same fairness discipline.
//! * [`ButterflyBalancer`] — `log2(N)` stages of dispatcher/merger pairs in
//!   a butterfly topology (Fig. 7b): local congestion propagates upstream
//!   and is averaged away, keeping earlier stages uniformly loaded even
//!   when a single downstream channel throttles.
//!
//! FIFO sizing between the scheduler and the pipelines comes from
//! Theorem VI.1 via [`grw_queueing::ridgewalker_fifo_depth`].

mod balancer;
mod centralized;
mod dispatcher;
mod merger;

pub use balancer::ButterflyBalancer;
pub use centralized::CentralizedScheduler;
pub use dispatcher::Dispatcher;
pub use merger::Merger;
