//! The N-to-N butterfly task balancer (Fig. 7b).
//!
//! `log2(N)` stages; each stage pairs one [`Dispatcher`] and one [`Merger`]
//! per lane, with stage `s` crossing lane bit `s`. Each dispatcher splits
//! its lane's traffic between "stay" and "cross" wires, and each merger
//! recombines the two incoming wires — so any input's load spreads
//! geometrically over all outputs, and congestion on one output diffuses
//! upstream instead of blocking a single path. All elements are O(1),
//! fully pipelined, and need no global arbitration — the paper's
//! counterpoint to O(N log N) centralised schedulers like CFS (§VI-C1).

use super::{Dispatcher, Merger};
use grw_sim::Fifo;

/// A cycle-accurate butterfly balancer over `N` lanes (`N` a power of two).
///
/// # Example
///
/// ```
/// use ridgewalker::scheduler::ButterflyBalancer;
///
/// let mut b: ButterflyBalancer<u32> = ButterflyBalancer::new(4);
/// b.push(0, 42);
/// for cycle in 0..20 {
///     b.tick();
/// }
/// let drained: usize = (0..4).filter_map(|l| b.pop(l)).count();
/// assert_eq!(drained, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ButterflyBalancer<T> {
    n: usize,
    /// Lane FIFOs between stages: `levels[0]` are the inputs,
    /// `levels[stages]` the outputs.
    levels: Vec<Vec<Fifo<T>>>,
    stages: Vec<Stage<T>>,
}

#[derive(Debug, Clone)]
struct Stage<T> {
    bit: usize,
    dispatchers: Vec<Dispatcher>,
    mergers: Vec<Merger>,
    /// Wire from dispatcher `i`'s "stay" output to merger `i`.
    straight: Vec<Fifo<T>>,
    /// Wire into merger `j`'s cross input, fed by dispatcher `j ^ bit`.
    cross: Vec<Fifo<T>>,
}

impl<T> ButterflyBalancer<T> {
    const LANE_DEPTH: usize = 4;
    const WIRE_DEPTH: usize = 2;

    /// Creates a balancer with `n` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n.is_power_of_two(), "lanes must be a power of two");
        let stage_count = n.trailing_zeros() as usize;
        let mk_lane = || (0..n).map(|_| Fifo::new(Self::LANE_DEPTH)).collect();
        let levels = (0..=stage_count).map(|_| mk_lane()).collect();
        let stages = (0..stage_count)
            .map(|s| Stage {
                bit: 1 << s,
                dispatchers: vec![Dispatcher::new(); n],
                mergers: vec![Merger::new(); n],
                straight: (0..n).map(|_| Fifo::new(Self::WIRE_DEPTH)).collect(),
                cross: (0..n).map(|_| Fifo::new(Self::WIRE_DEPTH)).collect(),
            })
            .collect();
        Self { n, levels, stages }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.n
    }

    /// Latency through the fabric: two pipelined elements per stage, two
    /// cycles each (§VI-D's `2·log2(N)` bound per direction).
    pub fn latency(&self) -> u64 {
        2 * self.stages.len() as u64
    }

    /// Offers a value to input `lane`; `false` when that input is full.
    pub fn push(&mut self, lane: usize, value: T) -> bool {
        self.levels[0][lane].push(value)
    }

    /// Whether input `lane` can accept a value this cycle.
    pub fn can_push(&self, lane: usize) -> bool {
        self.levels[0][lane].can_push()
    }

    /// Takes a value from output `lane`, if one is ready.
    pub fn pop(&mut self, lane: usize) -> Option<T> {
        let last = self.levels.len() - 1;
        self.levels[last][lane].pop()
    }

    /// Total values currently inside the fabric.
    pub fn in_flight(&self) -> usize {
        let lanes: usize = self.levels.iter().flatten().map(Fifo::len).sum();
        let wires: usize = self
            .stages
            .iter()
            .flat_map(|s| s.straight.iter().chain(&s.cross))
            .map(Fifo::len)
            .sum();
        lanes + wires
    }

    /// Advances the whole fabric one cycle.
    pub fn tick(&mut self) {
        // Downstream stages first, so space frees in dataflow order.
        for s in (0..self.stages.len()).rev() {
            let (before, after) = self.levels.split_at_mut(s + 1);
            let inputs = &mut before[s];
            let outputs = &mut after[0];
            let stage = &mut self.stages[s];
            // Mergers: wires → next level. The three borrows are disjoint
            // struct fields.
            for (j, out) in outputs.iter_mut().enumerate().take(self.n) {
                stage.mergers[j].tick(&mut stage.straight[j], &mut stage.cross[j], out);
            }
            // Dispatchers: this level → wires. Dispatcher `i` crosses to
            // lane `i ^ bit`, i.e. writes cross[i ^ bit].
            for (i, input) in inputs.iter_mut().enumerate().take(self.n) {
                let cross_idx = i ^ stage.bit;
                stage.dispatchers[i].tick(
                    input,
                    &mut stage.straight[i],
                    &mut stage.cross[cross_idx],
                );
            }
        }
        // Clock edge: commit every FIFO.
        for level in &mut self.levels {
            for f in level {
                f.commit();
            }
        }
        for stage in &mut self.stages {
            for f in stage.straight.iter_mut().chain(stage.cross.iter_mut()) {
                f.commit();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Push `count` values into `lane`, run until drained, return per-output
    /// tallies.
    fn spray(n: usize, lane: usize, count: usize, throttled: Option<usize>) -> Vec<usize> {
        let mut b: ButterflyBalancer<usize> = ButterflyBalancer::new(n);
        let mut fed = 0;
        let mut out = vec![0usize; n];
        let mut idle = 0;
        while idle < 200 {
            if fed < count && b.push(lane, fed) {
                fed += 1;
            }
            b.tick();
            let mut moved = false;
            for (j, slot) in out.iter_mut().enumerate() {
                if Some(j) == throttled {
                    continue;
                }
                if b.pop(j).is_some() {
                    *slot += 1;
                    moved = true;
                }
            }
            if moved || fed < count {
                idle = 0;
            } else {
                idle += 1;
            }
        }
        out
    }

    #[test]
    fn single_input_spreads_over_all_outputs() {
        let out = spray(4, 0, 400, None);
        let total: usize = out.iter().sum();
        assert_eq!(total, 400, "conservation");
        for (j, &c) in out.iter().enumerate() {
            assert!(
                (70..=130).contains(&c),
                "output {j} got {c}, expected ~100 of 400"
            );
        }
    }

    #[test]
    fn any_input_lane_balances() {
        for lane in 0..8 {
            let out = spray(8, lane, 240, None);
            assert_eq!(out.iter().sum::<usize>(), 240);
            assert!(out.iter().all(|&c| c >= 12), "lane {lane}: {out:?}");
        }
    }

    #[test]
    fn throttled_output_redirects_traffic_upstream() {
        // Fig. 7b: one slow output must not cap aggregate throughput.
        let out = spray(4, 0, 300, Some(2));
        let total: usize = out.iter().sum();
        // Output 2 is never drained: at most a few values are stuck inside
        // the fabric and its output FIFO; everything else flows.
        assert!(total >= 300 - 10, "only {total} of 300 delivered");
        assert_eq!(out[2], 0);
    }

    #[test]
    fn sustains_full_line_rate_on_all_inputs() {
        let n = 8;
        let mut b: ButterflyBalancer<usize> = ButterflyBalancer::new(n);
        let cycles = 600;
        let mut fed = 0usize;
        let mut drained = 0usize;
        for _ in 0..cycles {
            for lane in 0..n {
                if b.push(lane, 0) {
                    fed += 1;
                }
            }
            b.tick();
            for lane in 0..n {
                if b.pop(lane).is_some() {
                    drained += 1;
                }
            }
        }
        // Line rate: ~1 per lane per cycle after fill latency.
        let rate = drained as f64 / (cycles * n) as f64;
        assert!(rate > 0.9, "aggregate rate {rate}, fed {fed}");
    }

    #[test]
    fn conservation_with_random_draining() {
        let n = 4;
        let mut b: ButterflyBalancer<u64> = ButterflyBalancer::new(n);
        let mut fed = 0u64;
        let mut got = Vec::new();
        for cycle in 0..2000u64 {
            if fed < 500 && b.push((cycle % n as u64) as usize, fed) {
                fed += 1;
            }
            b.tick();
            for lane in 0..n {
                if !(cycle + lane as u64).is_multiple_of(3) {
                    if let Some(v) = b.pop(lane) {
                        got.push(v);
                    }
                }
            }
        }
        for _ in 0..200 {
            b.tick();
            for lane in 0..n {
                if let Some(v) = b.pop(lane) {
                    got.push(v);
                }
            }
        }
        got.sort_unstable();
        let expect: Vec<u64> = (0..500).collect();
        assert_eq!(got, expect, "every task exactly once");
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn latency_is_two_cycles_per_stage() {
        let b: ButterflyBalancer<u8> = ButterflyBalancer::new(16);
        assert_eq!(b.latency(), 8);
        let b1: ButterflyBalancer<u8> = ButterflyBalancer::new(1);
        assert_eq!(b1.latency(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _: ButterflyBalancer<u8> = ButterflyBalancer::new(6);
    }
}
