//! A CFS-style centralized scheduler — the design alternative §VI-C1
//! argues against.
//!
//! Conventional schedulers assign `N` tasks across `N` processors with a
//! centralized, indivisible decision: poll every queue, pick the least
//! loaded, commit. In hardware that serializes into one assignment per
//! cycle through a global arbiter (and each decision costs an O(log N)
//! comparison tree), so aggregate scheduling throughput is capped at one
//! task per cycle regardless of pipeline count — while the butterfly
//! balancer's pairwise elements sustain one task per *lane* per cycle.
//! This module exists to make that comparison measurable; it is not used
//! by the accelerator.

use grw_sim::Fifo;

/// A centralized least-loaded dispatcher over `N` output queues.
///
/// # Example
///
/// ```
/// use ridgewalker::scheduler::CentralizedScheduler;
///
/// let mut s: CentralizedScheduler<u32> = CentralizedScheduler::new(4, 8);
/// s.push(1);
/// s.tick();
/// s.tick();
/// let drained: usize = (0..4).filter_map(|l| s.pop(l)).count();
/// assert_eq!(drained, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CentralizedScheduler<T> {
    input: Fifo<T>,
    outputs: Vec<Fifo<T>>,
    assigned: u64,
}

impl<T> CentralizedScheduler<T> {
    /// Creates a scheduler over `n` outputs of the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `depth == 0`.
    pub fn new(n: usize, depth: usize) -> Self {
        assert!(n > 0, "need at least one output");
        Self {
            input: Fifo::new(n.max(16)),
            outputs: (0..n).map(|_| Fifo::new(depth)).collect(),
            assigned: 0,
        }
    }

    /// Number of output queues.
    pub fn lanes(&self) -> usize {
        self.outputs.len()
    }

    /// Offers a task to the global input queue.
    pub fn push(&mut self, value: T) -> bool {
        self.input.push(value)
    }

    /// Whether the input can accept a task this cycle.
    pub fn can_push(&self) -> bool {
        self.input.can_push()
    }

    /// Pops a scheduled task from output `lane`.
    pub fn pop(&mut self, lane: usize) -> Option<T> {
        self.outputs[lane].pop()
    }

    /// Total tasks assigned so far.
    pub fn assigned(&self) -> u64 {
        self.assigned
    }

    /// Tasks currently buffered inside the scheduler.
    pub fn in_flight(&self) -> usize {
        self.input.len() + self.outputs.iter().map(Fifo::len).sum::<usize>()
    }

    /// One cycle: a single atomic least-loaded assignment (the global
    /// arbiter bottleneck), then the clock edge.
    pub fn tick(&mut self) {
        if self.input.can_pop() {
            // Poll all queues — the O(N) (or O(log N) tree) central scan.
            let target = self
                .outputs
                .iter()
                .enumerate()
                .filter(|(_, f)| f.can_push())
                .min_by_key(|(_, f)| f.len())
                .map(|(i, _)| i);
            if let Some(i) = target {
                let task = self.input.pop().expect("checked");
                let ok = self.outputs[i].push(task);
                debug_assert!(ok);
                self.assigned += 1;
            }
        }
        self.input.commit();
        for f in &mut self.outputs {
            f.commit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ButterflyBalancer;

    #[test]
    fn assigns_least_loaded_first() {
        let mut s: CentralizedScheduler<u32> = CentralizedScheduler::new(2, 4);
        // Preload output 0.
        s.push(1);
        s.tick();
        s.tick();
        // Next task must land on output 1 (emptier).
        s.push(2);
        s.tick();
        s.tick();
        assert_eq!(s.pop(1), Some(2));
    }

    #[test]
    fn throughput_caps_at_one_task_per_cycle() {
        let n = 8;
        let mut s: CentralizedScheduler<u32> = CentralizedScheduler::new(n, 64);
        let cycles = 400;
        let mut drained = 0u64;
        for _ in 0..cycles {
            while s.can_push() {
                s.push(0);
            }
            s.tick();
            for lane in 0..n {
                if s.pop(lane).is_some() {
                    drained += 1;
                }
            }
        }
        let rate = drained as f64 / cycles as f64;
        assert!(
            rate <= 1.01,
            "centralized arbiter must serialize, got {rate:.2}/cycle"
        );
    }

    /// The §VI-C1 claim, measured: the distributed butterfly sustains close
    /// to one task per lane per cycle, the centralized scheduler one task
    /// per cycle total — a gap that scales with N.
    #[test]
    fn butterfly_outscales_centralized() {
        let n = 8;
        let cycles = 600;

        let mut central: CentralizedScheduler<u32> = CentralizedScheduler::new(n, 8);
        let mut central_drained = 0u64;
        for _ in 0..cycles {
            while central.can_push() {
                central.push(0);
            }
            central.tick();
            for lane in 0..n {
                if central.pop(lane).is_some() {
                    central_drained += 1;
                }
            }
        }

        let mut fly: ButterflyBalancer<u32> = ButterflyBalancer::new(n);
        let mut fly_drained = 0u64;
        for _ in 0..cycles {
            for lane in 0..n {
                fly.push(lane, 0);
            }
            fly.tick();
            for lane in 0..n {
                if fly.pop(lane).is_some() {
                    fly_drained += 1;
                }
            }
        }

        let ratio = fly_drained as f64 / central_drained as f64;
        assert!(
            ratio > (n as f64) * 0.7,
            "butterfly should deliver ~{n}x the centralized throughput, got {ratio:.1}x"
        );
    }
}
