//! The task Dispatcher — Algorithm VI.1, verbatim.

use grw_sim::Fifo;

/// Routes tasks from one input stream to two output channels while
/// honouring backpressure and guaranteeing fairness (Algorithm VI.1).
///
/// The decision is a branch-free decode of a three-bit `scode`:
/// `{out2.is_full, out1.is_full, last_selection}`:
///
/// | scode | situation | action |
/// |---|---|---|
/// | `0b001` | both free, last served out2 | alternate → out1 |
/// | `0b111` | both full, last served out2 | block on out1 (fairness) |
/// | `0b10x` | out2 full, out1 free | out1 (avoid stalling) |
/// | others | | out2 |
///
/// Fully pipelined: II = 1, fixed latency two cycles (modelled by the
/// staged FIFO commits around it).
///
/// # Example
///
/// ```
/// use grw_sim::Fifo;
/// use ridgewalker::scheduler::Dispatcher;
///
/// let mut d = Dispatcher::new();
/// let mut input = Fifo::new(4);
/// let (mut a, mut b) = (Fifo::new(4), Fifo::new(4));
/// input.push(1u32);
/// input.push(2);
/// input.commit();
/// d.tick(&mut input, &mut a, &mut b);
/// d.tick(&mut input, &mut a, &mut b);
/// a.commit();
/// b.commit();
/// assert_eq!(a.len() + b.len(), 2, "both tasks routed");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dispatcher {
    /// One-bit state: which output was served most recently (0 = out1).
    last_selection: u8,
    /// When both outputs were full, the channel we committed to block on.
    blocked_on: Option<u8>,
    routed: u64,
}

impl Dispatcher {
    /// Creates a dispatcher with `last_selection = 0` (Line 1 of VI.1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total tasks routed.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Which output would be chosen given the current full flags
    /// (the `build_scode` + `switch` of Algorithm VI.1): 0 = out1, 1 = out2.
    fn decide(&self, out1_full: bool, out2_full: bool) -> u8 {
        let scode = ((out2_full as u8) << 2) | ((out1_full as u8) << 1) | (self.last_selection & 1);
        match scode {
            // Both have space; pick not-last-served to alternate (out1).
            0b001 => 0,
            // Both full; block on not-last-served to guarantee fairness.
            0b111 => 0,
            // Only out1 can accept (out2 full); route there to avoid a stall.
            0b101 | 0b100 => 0,
            // All remaining cases take out2 (including the symmetric ones).
            _ => 1,
        }
    }

    /// One cycle: non-blocking read from `input`, route to an output.
    ///
    /// A "blocking write" in hardware holds the task until its committed
    /// channel drains; the dispatcher does the same by retrying the stored
    /// task each cycle before accepting new input.
    pub fn tick<T>(&mut self, input: &mut Fifo<T>, out1: &mut Fifo<T>, out2: &mut Fifo<T>) {
        // Finish a blocked write first (blocking_write semantics): the
        // dispatcher committed to a channel and must write there, keeping
        // the fairness guarantee.
        if let Some(ch) = self.blocked_on {
            let target = if ch == 0 { &mut *out1 } else { &mut *out2 };
            if target.is_full() {
                return; // still blocked; II stalls upstream naturally
            }
            let task = input.pop().expect("a blocked dispatcher holds its input");
            let ok = target.push(task);
            debug_assert!(ok);
            self.blocked_on = None;
            self.last_selection = ch;
            self.routed += 1;
            return;
        }
        // Non-blocking read (Line 3): skip the iteration when no input.
        if !input.can_pop() {
            return;
        }
        let out1_full = out1.is_full();
        let out2_full = out2.is_full();
        let choice = self.decide(out1_full, out2_full);
        let target_full = if choice == 0 { out1_full } else { out2_full };
        if target_full {
            // Both full (the 0b111/0b110 cases): commit to the chosen
            // channel and stall the input until it drains.
            self.blocked_on = Some(choice);
            return;
        }
        let task = input.pop().expect("can_pop checked");
        let ok = if choice == 0 {
            out1.push(task)
        } else {
            out2.push(task)
        };
        debug_assert!(ok, "target checked not-full");
        self.last_selection = choice;
        self.routed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(d: &mut Dispatcher, input: &mut Fifo<u32>, a: &mut Fifo<u32>, b: &mut Fifo<u32>) {
        d.tick(input, a, b);
        input.commit();
        a.commit();
        b.commit();
    }

    #[test]
    fn alternates_when_both_free() {
        let mut d = Dispatcher::new();
        let mut input = Fifo::new(16);
        let (mut a, mut b) = (Fifo::new(16), Fifo::new(16));
        for i in 0..8u32 {
            input.push(i);
        }
        input.commit();
        for _ in 0..8 {
            drive(&mut d, &mut input, &mut a, &mut b);
        }
        assert_eq!(a.len(), 4, "strict alternation");
        assert_eq!(b.len(), 4);
        // Order within each channel is preserved.
        assert_eq!(a.pop(), Some(1)); // first task goes to out2 (last=0)
        assert_eq!(b.pop(), Some(0));
    }

    #[test]
    fn avoids_the_full_channel() {
        let mut d = Dispatcher::new();
        let mut input = Fifo::new(16);
        let (mut a, mut b) = (Fifo::new(16), Fifo::new(1));
        b.push(99);
        b.commit(); // b is now full
        for i in 0..4u32 {
            input.push(i);
        }
        input.commit();
        for _ in 0..4 {
            d.tick(&mut input, &mut a, &mut b);
            input.commit();
            a.commit();
        }
        assert_eq!(a.len(), 4, "everything must flow to the free channel");
    }

    #[test]
    fn blocks_fairly_when_both_full_then_resumes() {
        let mut d = Dispatcher::new();
        let mut input = Fifo::new(16);
        let (mut a, mut b) = (Fifo::new(1), Fifo::new(1));
        a.push(7);
        b.push(8);
        a.commit();
        b.commit();
        input.push(1);
        input.commit();
        // Both full: dispatcher must commit to the not-last-served channel
        // (out1, since last_selection = 0 → scode 0b110 → out2? No:
        // last = 0 means out1 was last served, so fairness blocks on out2).
        d.tick(&mut input, &mut a, &mut b);
        assert_eq!(input.len(), 1, "task not consumed while blocked");
        // Drain out2; the dispatcher resumes onto it.
        b.pop();
        a.commit();
        b.commit();
        d.tick(&mut input, &mut a, &mut b);
        b.commit();
        input.commit();
        assert_eq!(b.len(), 1, "unblocked onto the committed channel");
        assert_eq!(input.len(), 0);
    }

    #[test]
    fn nothing_happens_without_input() {
        let mut d = Dispatcher::new();
        let mut input: Fifo<u32> = Fifo::new(4);
        let (mut a, mut b) = (Fifo::new(4), Fifo::new(4));
        drive(&mut d, &mut input, &mut a, &mut b);
        assert_eq!(a.len() + b.len(), 0);
        assert_eq!(d.routed(), 0);
    }

    #[test]
    fn conserves_tasks_under_random_backpressure() {
        let mut d = Dispatcher::new();
        let mut input = Fifo::new(64);
        let (mut a, mut b) = (Fifo::new(2), Fifo::new(3));
        let mut fed = 0u32;
        let mut drained = Vec::new();
        for cycle in 0..400 {
            if fed < 100 && input.can_push() {
                input.push(fed);
                fed += 1;
            }
            d.tick(&mut input, &mut a, &mut b);
            // Irregular consumer rates downstream.
            if cycle % 3 == 0 {
                if let Some(x) = a.pop() {
                    drained.push(x);
                }
            }
            if cycle % 5 == 0 {
                if let Some(x) = b.pop() {
                    drained.push(x);
                }
            }
            input.commit();
            a.commit();
            b.commit();
        }
        while let Some(x) = a.pop() {
            drained.push(x);
        }
        while let Some(x) = b.pop() {
            drained.push(x);
        }
        let total = drained.len() + input.len();
        assert_eq!(total, 100, "no task lost or duplicated");
        let mut seen = drained.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), drained.len(), "no duplicates");
    }
}
