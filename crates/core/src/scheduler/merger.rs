//! The task Merger — Algorithm VI.2, verbatim.

use grw_sim::Fifo;

/// Merges two input streams into one output under backpressure, with
/// starvation-free alternation (Algorithm VI.2).
///
/// The three-bit `scode` is `{in2.is_empty, in1.is_empty, last_selection}`:
///
/// | scode | situation | action |
/// |---|---|---|
/// | `0b111`, `0b110` | both empty | nothing |
/// | `0b10x` | only in1 valid | forward in1 |
/// | `0b001` | both valid, last served in2 | alternate → in1 |
/// | others | | forward in2 |
///
/// In the scheduler this is module ➋: the recirculated-unfinished-query
/// stream merges with freshly balanced queries, and the alternation bounds
/// the worst-case waiting latency of both (§VI-C3).
///
/// # Example
///
/// ```
/// use grw_sim::Fifo;
/// use ridgewalker::scheduler::Merger;
///
/// let mut m = Merger::new();
/// let (mut a, mut b, mut out) = (Fifo::new(4), Fifo::new(4), Fifo::new(4));
/// a.push(1u32);
/// b.push(2);
/// a.commit();
/// b.commit();
/// m.tick(&mut a, &mut b, &mut out);
/// m.tick(&mut a, &mut b, &mut out);
/// out.commit();
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Merger {
    /// One-bit state: which input was served most recently (0 = in1).
    last_selection: u8,
    merged: u64,
}

impl Merger {
    /// Creates a merger with `last_selection = 0` (Line 1 of VI.2).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total tasks forwarded.
    pub fn merged(&self) -> u64 {
        self.merged
    }

    /// One cycle: pick an input per the scode table, forward to `out`.
    /// A full output exerts backpressure (nothing is consumed).
    pub fn tick<T>(&mut self, in1: &mut Fifo<T>, in2: &mut Fifo<T>, out: &mut Fifo<T>) {
        if out.is_full() {
            return; // blocking_write would stall: consume nothing
        }
        let e1 = !in1.can_pop();
        let e2 = !in2.can_pop();
        let scode = ((e2 as u8) << 2) | ((e1 as u8) << 1) | (self.last_selection & 1);
        let choice = match scode {
            // Both inputs empty.
            0b111 | 0b110 => return,
            // Only in1 has valid data; forward it directly.
            0b101 | 0b100 => 0,
            // Both valid; alternate to the not-last-served input (in1).
            0b001 => 0,
            // Everything else forwards in2 (only-in2-valid and the
            // both-valid, last-served-in1 alternation case).
            _ => 1,
        };
        let task = if choice == 0 {
            in1.pop().expect("scode guarantees in1 valid")
        } else {
            in2.pop().expect("scode guarantees in2 valid")
        };
        let ok = out.push(task);
        debug_assert!(ok, "output checked not-full");
        self.last_selection = choice;
        self.merged += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(m: &mut Merger, a: &mut Fifo<u32>, b: &mut Fifo<u32>, out: &mut Fifo<u32>) {
        m.tick(a, b, out);
        a.commit();
        b.commit();
        out.commit();
    }

    #[test]
    fn alternates_between_busy_inputs() {
        let mut m = Merger::new();
        let (mut a, mut b, mut out) = (Fifo::new(8), Fifo::new(8), Fifo::new(16));
        for i in 0..4u32 {
            a.push(i * 2); // evens from in1
            b.push(i * 2 + 1); // odds from in2
        }
        a.commit();
        b.commit();
        let mut order = Vec::new();
        for _ in 0..8 {
            drive(&mut m, &mut a, &mut b, &mut out);
            while let Some(x) = out.pop() {
                order.push(x);
            }
        }
        // Strict alternation starting with in2 (last_selection = 0).
        assert_eq!(order, vec![1, 0, 3, 2, 5, 4, 7, 6]);
    }

    #[test]
    fn forwards_the_only_busy_input_at_line_rate() {
        let mut m = Merger::new();
        let (mut a, mut b, mut out) = (Fifo::new(8), Fifo::new(8), Fifo::new(16));
        for i in 0..5u32 {
            a.push(i);
        }
        a.commit();
        for _ in 0..5 {
            drive(&mut m, &mut a, &mut b, &mut out);
        }
        assert_eq!(out.len(), 5, "no throughput lost to the idle input");
    }

    #[test]
    fn respects_output_backpressure() {
        let mut m = Merger::new();
        let (mut a, mut b, mut out) = (Fifo::new(8), Fifo::new(8), Fifo::new(1));
        a.push(1);
        a.push(2);
        a.commit();
        drive(&mut m, &mut a, &mut b, &mut out);
        drive(&mut m, &mut a, &mut b, &mut out);
        assert_eq!(out.len(), 1, "full output accepts nothing more");
        assert_eq!(a.len(), 1, "input not consumed while blocked");
    }

    #[test]
    fn empty_inputs_do_nothing() {
        let mut m = Merger::new();
        let (mut a, mut b, mut out) = (Fifo::new(2), Fifo::new(2), Fifo::new(2));
        drive(&mut m, &mut a, &mut b, &mut out);
        assert_eq!(out.len(), 0);
        assert_eq!(m.merged(), 0);
    }

    #[test]
    fn no_starvation_under_congestion() {
        // in2 produces every cycle; in1 occasionally. in1 must still get
        // through within bounded delay (the fairness guarantee).
        let mut m = Merger::new();
        let (mut a, mut b, mut out) = (Fifo::new(8), Fifo::new(8), Fifo::new(2));
        let mut got_from_a = 0u32;
        let mut fed_b = 0u32;
        a.push(1000);
        a.commit();
        for cycle in 0..100 {
            if b.can_push() {
                b.push(fed_b);
                fed_b += 1;
            }
            m.tick(&mut a, &mut b, &mut out);
            if let Some(x) = out.pop() {
                if x >= 1000 {
                    got_from_a += 1;
                }
            }
            a.commit();
            b.commit();
            out.commit();
            if got_from_a > 0 {
                assert!(cycle < 10, "in1 starved for {cycle} cycles");
                break;
            }
        }
        assert_eq!(got_from_a, 1);
    }
}
