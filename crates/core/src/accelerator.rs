//! The RidgeWalker accelerator: N asynchronous pipelines over paired
//! memory channels, driven cycle by cycle.
//!
//! Dataflow per hop (Fig. 4a):
//!
//! ```text
//! loader ─▶ scheduler(balancer, 2·logN) ─▶ ra_router ─▶ RA fifo ─▶ RA read
//!    ▲                                                               │
//!    │ recirculation (unfinished queries, priority)                  ▼
//!    └──────────── CA read ◀─ SP sampling ◀─ cl_router ◀─ RP entry ──┘
//! ```
//!
//! Each hop is one stateless [`Task`]; the Row-Access read goes to the
//! channel owning `RP[v_curr]`, the RP entry names the Column-Access
//! channel holding the neighbor list, and the completed hop recirculates
//! into the scheduler. The static bulk-synchronous mode (ablation) binds
//! queries to pipelines by id and separates execution into batch barriers.

#[cfg(test)]
use crate::config::MemoryMode;
use crate::config::{AcceleratorConfig, ScheduleMode};
use crate::engine::AsyncAccessEngine;
use crate::report::{RunReport, TerminationBreakdown};
use crate::router::TaskRouter;
use crate::task::Task;
use grw_algo::{PreparedGraph, SampleMethod, SamplerRuntime, WalkPath, WalkQuery, WalkSpec};
use grw_graph::{ChannelLayout, RpEntryKind, VertexId};
use grw_rng::{Philox4x32, RandomSource};
use grw_sim::stats::UtilizationMeter;
use grw_sim::{Cycle, Fifo, MemoryChannelSpec};
use std::collections::VecDeque;

/// Salt separating the teleport coin from the sampling stream.
const TELEPORT_SALT: u64 = 0x7E1E_0000_0000_0000;

/// Per-sampling-job bookkeeping inside a Sampling module.
#[derive(Debug, Clone, Copy)]
struct SpJob {
    task: Task,
    /// Sampled next vertex; `None` means the walk terminates at sampling
    /// (MetaPath with no matching neighbor).
    next: Option<VertexId>,
    /// Random sampling reads still to issue.
    random_left: u32,
    /// Sequential scan transactions still to issue.
    seq_left: u32,
    /// Issued reads whose data has not returned yet.
    pending: u32,
}

/// Metadata flowing through a Column-Access channel engine.
#[derive(Debug, Clone, Copy)]
enum CaMeta {
    /// A sampling read for job `job` owned by pipeline `owner` (scans are
    /// striped across channels, so completions can land anywhere).
    Sp { owner: u32, job: u32 },
    /// The final column read of a hop: the task and its sampled successor.
    Final(Task, VertexId),
}

/// One asynchronous pipeline: Row Access + Sampling + Column Access over a
/// private (RA, CA) channel pair.
#[derive(Debug, Clone)]
struct Pipeline {
    ra_fifo: Fifo<Task>,
    ra_engine: AsyncAccessEngine<Task>,
    /// RA completions waiting to enter the column router.
    ra_out: VecDeque<Task>,
    sp_fifo: Fifo<Task>,
    jobs: Vec<SpJob>,
    free_jobs: Vec<u32>,
    /// Jobs with reads left to issue (front gets one issue per cycle).
    sp_issue: VecDeque<u32>,
    /// Sampled hops awaiting the final column read.
    ca_ready: VecDeque<(Task, Option<VertexId>)>,
    ca_engine: AsyncAccessEngine<CaMeta>,
    util: UtilizationMeter,
}

impl Pipeline {
    fn new(fifo_depth: usize, ra_spec: MemoryChannelSpec, ca_spec: MemoryChannelSpec) -> Self {
        Self {
            ra_fifo: Fifo::new(fifo_depth),
            ra_engine: AsyncAccessEngine::new(ra_spec, ra_spec.max_outstanding),
            ra_out: VecDeque::new(),
            sp_fifo: Fifo::new(8),
            jobs: Vec::new(),
            free_jobs: Vec::new(),
            sp_issue: VecDeque::new(),
            ca_ready: VecDeque::new(),
            ca_engine: AsyncAccessEngine::new(ca_spec, ca_spec.max_outstanding),
            util: UtilizationMeter::new(),
        }
    }

    fn alloc_job(&mut self, job: SpJob) -> u32 {
        if let Some(id) = self.free_jobs.pop() {
            self.jobs[id as usize] = job;
            id
        } else {
            self.jobs.push(job);
            (self.jobs.len() - 1) as u32
        }
    }
}

/// How a task fares at an admission point (injection or recirculation).
enum Admit {
    Go(Task),
    Complete(Termination),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Termination {
    MaxLength,
    DeadEnd,
    Teleport,
    NoTypedNeighbor,
}

/// The accelerator model.
///
/// See the crate docs for an end-to-end example; [`Accelerator::run`] is
/// the entire public surface.
#[derive(Debug, Clone)]
pub struct Accelerator {
    config: AcceleratorConfig,
}

impl Accelerator {
    /// Creates an accelerator from its configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Executes `queries` over the prepared graph and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if a query's start vertex is out of range, or if the run
    /// exceeds `config.max_cycles` (a configuration error).
    pub fn run(
        &self,
        prepared: &PreparedGraph,
        spec: &WalkSpec,
        queries: &[WalkQuery],
    ) -> RunReport {
        let mut m = Machine::new(self.config, prepared, spec);
        for q in queries {
            m.enqueue(q);
        }
        m.run_to_quiescence(prepared);
        // Completion order back to submission order: slot ids are assigned
        // in submission order, exactly the legacy batch indices.
        let mut done = m.take_completed();
        done.sort_by_key(|&(slot, _)| slot);
        m.report(done.into_iter().map(|(_, p)| p).collect())
    }
}

/// One query's residency in the machine: its external id and the path
/// built so far (taken when the walk completes).
#[derive(Debug, Clone)]
struct Slot {
    id: u64,
    vertices: Vec<VertexId>,
}

/// The long-lived cycle-level machine behind both execution modes.
///
/// Unlike the one-shot simulation it replaced, the machine owns its
/// configuration and pipeline state and keeps running across calls:
/// [`enqueue`](Machine::enqueue) parks a query for the loader,
/// [`advance`](Machine::advance) steps a bounded number of cycles, and
/// completed walks stream out of [`take_completed`](Machine::take_completed)
/// in completion order. `Accelerator::run` is now the degenerate use —
/// enqueue everything, run to quiescence — and is bit-identical to the old
/// batch simulation because slot ids (the RNG key) are assigned in
/// submission order.
///
/// The prepared graph is passed into every advancing call rather than
/// stored, so a backend can own the graph (`Arc`/borrow) and the machine
/// simultaneously; callers must pass the same graph the machine was built
/// from.
#[derive(Debug, Clone)]
pub(crate) struct Machine {
    cfg: AcceleratorConfig,
    spec: WalkSpec,
    layout: ChannelLayout,
    vertex_count: usize,
    n: usize,
    dynamic: bool,
    rp_kind: RpEntryKind,
    final_read_bytes: u64,
    sched_latency: Cycle,
    seed: u64,
    /// FastRW-style cache membership per vertex, when modelled.
    rp_cached: Option<Vec<bool>>,
    /// Extra final-read credit for streamed pre-generated randoms.
    rng_tax_cost: f64,

    pipes: Vec<Pipeline>,
    ra_router: TaskRouter<Task>,
    cl_router: TaskRouter<Task>,
    /// Balancer-latency delay line in front of the RA router.
    sched_pipe: VecDeque<(Cycle, Task)>,
    recirc: VecDeque<Task>,
    pending_inject: VecDeque<Task>,

    /// One entry per query enqueued this *epoch*; index `i` holds global
    /// submission index `slot_base + i`, which keys the query's
    /// counter-based randomness. Ids are never reused *as RNG keys* —
    /// but once every slot before the pending window has completed and
    /// been taken, [`maybe_compact`](Machine::maybe_compact) drops the
    /// dead prefix and folds its length into `slot_base`. Reclamation
    /// happens at quiescence points (nothing in flight, completions
    /// collected) — every drain and every idle gap between waves — so a
    /// streaming run's table is O(resident + threshold) across such
    /// points; a machine held saturated without ever quiescing defers
    /// reclamation until its next quiescent instant.
    slots: Vec<Slot>,
    /// Global submission index of `slots[0]` (the epoch base).
    slot_base: u64,
    /// Epoch rebases performed so far.
    compactions: u64,
    /// Slot ids enqueued but not yet injected by the loader.
    pending: VecDeque<u32>,
    /// Completed walks in completion order, tagged with their slot.
    out: VecDeque<(u32, WalkPath)>,
    cycle: Cycle,
    inflight: usize,
    completed: u64,
    batch_remaining: usize,
    steps: u64,
    terms: TerminationBreakdown,
    /// Sampler state of the modelled on-chip sampling unit: the
    /// second-order edge-alias cache (when the prepared graph's strategy
    /// table uses one) and cumulative kernel counters.
    sampler_rt: SamplerRuntime,
}

impl Machine {
    pub(crate) fn new(cfg: AcceleratorConfig, prepared: &PreparedGraph, spec: &WalkSpec) -> Self {
        let graph = prepared.graph();
        let n = cfg.effective_pipelines() as usize;
        let platform = cfg.platform.spec();
        let mut ra_chan = platform.channel_spec();
        ra_chan.max_outstanding = cfg.effective_ra_outstanding();
        let mut ca_chan = platform.channel_spec();
        ca_chan.max_outstanding = cfg.effective_ca_outstanding();
        let depth = cfg.effective_fifo_depth();
        // FastRW-style cache: the top-K vertices by in-degree (the best
        // static proxy for visit frequency) have their RP entries on chip.
        let rp_cached = cfg.rp_cache_entries.map(|k| {
            let nv = graph.vertex_count();
            let mut in_deg = vec![0u32; nv];
            for &w in graph.column_list() {
                in_deg[w as usize] += 1;
            }
            let mut order: Vec<u32> = (0..nv as u32).collect();
            order.sort_unstable_by_key(|&v| std::cmp::Reverse(in_deg[v as usize]));
            let mut cached = vec![false; nv];
            for &v in order.iter().take(k) {
                cached[v as usize] = true;
            }
            cached
        });
        let rp_kind = spec.rp_entry_kind();
        // DeepWalk folds the alias entry and the neighbor id into one
        // 16-byte column read (URW-level transaction count, §VIII-C).
        let final_read_bytes = if matches!(spec, WalkSpec::DeepWalk { .. }) {
            16
        } else {
            8
        };
        let log_n = (usize::BITS - (n.max(2) - 1).leading_zeros()) as Cycle;
        Self {
            layout: ChannelLayout::new(graph, n as u32, n as u32),
            vertex_count: graph.vertex_count(),
            n,
            dynamic: cfg.schedule == ScheduleMode::ZeroBubble,
            rp_kind,
            final_read_bytes,
            sched_latency: 2 * log_n,
            seed: cfg.seed,
            rp_cached,
            // Sequential streamed randoms: one row activation per 8 words.
            rng_tax_cost: f64::from(cfg.rng_seq_reads_per_step) * 0.125,
            pipes: (0..n)
                .map(|_| Pipeline::new(depth, ra_chan, ca_chan))
                .collect(),
            ra_router: TaskRouter::new(n),
            cl_router: TaskRouter::new(n),
            sched_pipe: VecDeque::new(),
            recirc: VecDeque::new(),
            pending_inject: VecDeque::new(),
            slots: Vec::new(),
            slot_base: 0,
            compactions: 0,
            pending: VecDeque::new(),
            out: VecDeque::new(),
            cycle: 0,
            inflight: 0,
            completed: 0,
            batch_remaining: 0,
            steps: 0,
            terms: TerminationBreakdown::default(),
            sampler_rt: prepared.runtime(),
            cfg,
            spec: spec.clone(),
        }
    }

    /// Parks a query for the loader; it joins the running machine at the
    /// next issue slot with capacity.
    ///
    /// # Panics
    ///
    /// Panics if the query's start vertex is out of range.
    pub(crate) fn enqueue(&mut self, q: &WalkQuery) {
        assert!(
            (q.start as usize) < self.vertex_count,
            "query {} starts at out-of-range vertex {}",
            q.id,
            q.start
        );
        self.maybe_compact();
        let slot = u32::try_from(self.slots.len()).expect("slot ids exhausted");
        self.slots.push(Slot {
            id: q.id,
            vertices: vec![q.start],
        });
        self.pending.push_back(slot);
    }

    /// Epoch-based slot-table rebasing. When nothing is in flight and
    /// every completed path has been taken, all slots below the pending
    /// window are dead: drop the prefix, renumber the pending suffix, and
    /// fold the dropped length into `slot_base`. Randomness is keyed by
    /// the *global* submission index (`slot_base + local`), so walks are
    /// bit-identical with or without compaction — only memory changes.
    fn maybe_compact(&mut self) {
        if self.inflight != 0 || !self.out.is_empty() {
            return;
        }
        let done = self.slots.len() - self.pending.len();
        if done < self.cfg.effective_slot_compact_threshold() {
            return;
        }
        // Injection is FIFO, so the pending ids are exactly the
        // contiguous suffix [done, slots.len()).
        debug_assert!(self.pending.front().is_none_or(|&f| f as usize == done));
        self.slots.drain(..done);
        for slot in &mut self.pending {
            *slot -= done as u32;
        }
        self.slot_base += done as u64;
        self.compactions += 1;
    }

    /// Slots currently held (resident queries plus completed slots not
    /// yet reclaimed by compaction).
    pub(crate) fn slot_table_len(&self) -> usize {
        self.slots.len()
    }

    /// Epoch rebases performed so far.
    pub(crate) fn compactions(&self) -> u64 {
        self.compactions
    }

    /// The counter-based RNG of `task`, keyed by its global submission
    /// index so slot-table compaction never changes a walk's randomness.
    /// With `slot_base == 0` this is exactly [`Task::rng`].
    fn task_rng(&self, task: &Task, salt: u64) -> Philox4x32 {
        Philox4x32::keyed(
            (self.seed ^ salt) ^ (self.slot_base + u64::from(task.query)),
            u64::from(task.step),
        )
    }

    /// Whether the machine holds no work at all: nothing pending, nothing
    /// in flight. Completed-but-uncollected paths do not count.
    pub(crate) fn quiescent(&self) -> bool {
        self.pending.is_empty() && self.inflight == 0
    }

    /// Queries inside the machine (pending injection or in flight).
    pub(crate) fn resident(&self) -> usize {
        self.pending.len() + self.inflight
    }

    /// Occupancy split: `(awaiting injection, in flight)`. The first term
    /// is the machine-internal queue a load generator observes growing
    /// under overload; the second is bounded by the issue-slot capacity.
    pub(crate) fn occupancy(&self) -> (usize, usize) {
        (self.pending.len(), self.inflight)
    }

    /// Cycles simulated so far. The clock only runs while work exists —
    /// an idle machine between submissions consumes no simulated time.
    pub(crate) fn cycles(&self) -> Cycle {
        self.cycle
    }

    /// Hops executed so far.
    pub(crate) fn steps(&self) -> u64 {
        self.steps
    }

    pub(crate) fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// The merged pipeline occupancy meter.
    pub(crate) fn pipeline_meter(&self) -> UtilizationMeter {
        let mut util = UtilizationMeter::new();
        for p in &self.pipes {
            util.merge(&p.util);
        }
        util
    }

    /// Advances the machine by at most `quantum` cycles, stopping early at
    /// quiescence. Returns the cycles actually simulated.
    pub(crate) fn advance(&mut self, prepared: &PreparedGraph, quantum: Cycle) -> Cycle {
        let mut advanced = 0;
        while advanced < quantum && !self.quiescent() {
            self.step_cycle(prepared);
            advanced += 1;
        }
        advanced
    }

    /// Runs until quiescent.
    ///
    /// # Panics
    ///
    /// Panics if more than `config.max_cycles` additional cycles pass
    /// without quiescence (a configuration error).
    pub(crate) fn run_to_quiescence(&mut self, prepared: &PreparedGraph) {
        let deadline = self.cycle + self.cfg.max_cycles;
        while !self.quiescent() {
            assert!(
                self.cycle < deadline,
                "simulation exceeded {} cycles ({} of {} queries done)",
                self.cfg.max_cycles,
                self.completed,
                // Cumulative submissions: the rebased table length alone
                // would under-count after a compaction.
                self.slot_base + self.slots.len() as u64
            );
            self.step_cycle(prepared);
        }
    }

    /// Takes every completed walk, in completion order, tagged with its
    /// slot id.
    pub(crate) fn take_completed(&mut self) -> Vec<(u32, WalkPath)> {
        let out = self.out.drain(..).collect();
        // Taking the paths is what frees completed slots for reclamation;
        // rebase now if the dead prefix has grown past the threshold.
        self.maybe_compact();
        out
    }

    /// Admission: the max-length check and the PPR teleport coin, both
    /// memory-free, applied before a task (re-)enters the scheduler.
    fn admit(&self, task: Task) -> Admit {
        if task.step >= self.spec.max_len() {
            return Admit::Complete(Termination::MaxLength);
        }
        if let WalkSpec::Ppr { alpha, .. } = &self.spec {
            let mut rng = self.task_rng(&task, TELEPORT_SALT);
            if rng.next_bool(*alpha) {
                return Admit::Complete(Termination::Teleport);
            }
        }
        Admit::Go(task)
    }

    fn finish(&mut self, slot: u32, reason: Termination) {
        self.completed += 1;
        self.inflight -= 1;
        if self.batch_remaining > 0 {
            self.batch_remaining -= 1;
        }
        match reason {
            Termination::MaxLength => self.terms.max_length += 1,
            Termination::DeadEnd => self.terms.dead_end += 1,
            Termination::Teleport => self.terms.teleport += 1,
            Termination::NoTypedNeighbor => self.terms.no_typed_neighbor += 1,
        }
        let s = &mut self.slots[slot as usize];
        let vertices = std::mem::take(&mut s.vertices);
        self.out.push_back((slot, WalkPath::new(s.id, vertices)));
    }

    /// Routing ports: data-aware in dynamic mode, id-bound in static
    /// mode. Static binding uses the *global* submission index (epoch
    /// base + local slot), like the RNG keys, so slot-table compaction
    /// never re-routes a query to a different pipeline — timing and
    /// channel telemetry stay compaction-invariant too.
    fn static_port(&self, task: &Task) -> usize {
        ((self.slot_base + u64::from(task.query)) % self.n as u64) as usize
    }

    fn ra_port(&self, task: &Task) -> usize {
        if self.dynamic {
            self.layout.rp_channel(task.v_curr) as usize
        } else {
            self.static_port(task)
        }
    }

    fn cl_port(&self, task: &Task) -> usize {
        if self.dynamic {
            self.layout.cl_channel(task.v_curr) as usize
        } else {
            self.static_port(task)
        }
    }

    /// The sampling decision and its memory cost for one task. The cost
    /// is keyed on the *kernel that actually ran* ([`SampleMethod`]) —
    /// under the adaptive strategy layer the same spec mixes kernels per
    /// degree bucket, and each has a distinct memory signature.
    fn sampling_job(&mut self, prepared: &PreparedGraph, task: Task) -> SpJob {
        let mut rng = self.task_rng(&task, 0);
        let decision = prepared.sample_neighbor_with(
            &mut self.sampler_rt,
            &self.spec,
            task.v_curr,
            task.prev(),
            task.step,
            &mut rng,
        );
        match decision {
            None => SpJob {
                task,
                next: None,
                // A fruitless MetaPath scan still reads the whole list.
                seq_left: match self.spec {
                    WalkSpec::MetaPath { .. } => div8(prepared.graph().degree(task.v_curr)),
                    _ => 0,
                },
                random_left: 0,
                pending: 0,
            },
            Some((next, outcome)) => {
                let (random_left, seq_left) = match outcome.method {
                    // Direct index pick, or an alias entry folded into the
                    // final read (DeepWalk's 16-byte column transaction).
                    SampleMethod::Uniform | SampleMethod::Alias => (0, 0),
                    // On-the-fly alias row: a sequential weight scan, no
                    // random reads.
                    SampleMethod::InverseTransform => (0, div8(outcome.scanned)),
                    // Rejected candidates are real random reads; the
                    // accepted candidate is the final read. Membership
                    // tests against N(prev) are on-chip: the previous hop
                    // already fetched that list (the LightRW/KnightKing
                    // trick), so probes cost no memory transactions.
                    SampleMethod::Rejection => (
                        outcome.uniform_trials.saturating_sub(1),
                        div8(outcome.scanned),
                    ),
                    SampleMethod::Reservoir | SampleMethod::TypedReservoir => {
                        (0, div8(outcome.scanned))
                    }
                    // One random read for the per-edge alias entry; a miss
                    // additionally streams both neighbor lists to rebuild
                    // the row (`scanned` is 0 on a cache hit).
                    SampleMethod::SecondOrderAlias => (1, div8(outcome.scanned)),
                };
                SpJob {
                    task,
                    next: Some(next),
                    random_left,
                    seq_left,
                    pending: 0,
                }
            }
        }
    }

    /// Whether the system is *backlogged* in the Theorem VI.1 sense: the
    /// loader still holds queries, or at least one ready task per pipeline
    /// waits on the scheduler side. A pipeline idling outside backlog
    /// (start-up fill, final drain) is not a bubble — the paper's
    /// zero-bubble guarantee is conditioned on backlog (§VI-B).
    fn work_exists(&self) -> bool {
        !self.pending.is_empty() || self.recirc.len() + self.pending_inject.len() >= self.n
    }

    /// A report over everything this machine has executed so far, with
    /// `paths` attached (callers that stream paths out pass an empty Vec).
    pub(crate) fn report(&self, paths: Vec<WalkPath>) -> RunReport {
        let platform = self.cfg.platform.spec();
        let clock = platform.clock_mhz;
        let util = self.pipeline_meter();
        let mut txns = 0u64;
        let mut bytes = 0u64;
        for p in &self.pipes {
            txns += p.ra_engine.issued() + p.ca_engine.issued();
            bytes += p.ra_engine.bytes_moved() + p.ca_engine.bytes_moved();
        }
        let msteps = if self.cycle == 0 {
            0.0
        } else {
            self.steps as f64 / self.cycle as f64 * clock
        };
        // §III-B: effective bandwidth is the *footprint of traversed
        // edges* over time — one RP entry plus one column entry per step,
        // regardless of whether a cache supplied the data. (URW: 16 B/step,
        // matching Table III's 88% at 2098 MStep/s.)
        let footprint = f64::from(self.rp_kind.bytes()) + 8.0;
        let eff_bw = msteps * footprint / 1000.0;
        let peak_bw = platform.peak_random_bandwidth_gbs();
        RunReport {
            paths,
            cycles: self.cycle,
            steps: self.steps,
            clock_mhz: clock,
            msteps_per_sec: msteps,
            bubble_ratio: util.bubble_ratio(),
            pipeline_utilization: util.utilization(),
            pipeline_cycles: util,
            random_txns: txns,
            bytes_moved: bytes,
            effective_bandwidth_gbs: eff_bw,
            peak_bandwidth_gbs: peak_bw,
            bandwidth_utilization: (eff_bw / peak_bw).clamp(0.0, 1.0),
            terminations: self.terms,
            sampling: self.sampler_rt.counters(),
        }
    }

    /// Cumulative sampling-kernel counters of the machine's sampler
    /// runtime.
    pub(crate) fn sampling_counters(&self) -> grw_sim::stats::SamplingCounters {
        self.sampler_rt.counters()
    }

    fn step_cycle(&mut self, prepared: &PreparedGraph) {
        let cycle = self.cycle;
        if cycle.is_multiple_of(65_536) && cycle > 0 && std::env::var_os("RIDGE_TRACE").is_some() {
            let ra_fifo: usize = self.pipes.iter().map(|p| p.ra_fifo.len()).sum();
            let ra_out: usize = self.pipes.iter().map(|p| p.ra_out.len()).sum();
            let ra_inflight: usize = self.pipes.iter().map(|p| p.ra_engine.in_flight()).sum();
            let sp_fifo: usize = self.pipes.iter().map(|p| p.sp_fifo.len()).sum();
            let ca_ready: usize = self.pipes.iter().map(|p| p.ca_ready.len()).sum();
            let ca_inflight: usize = self.pipes.iter().map(|p| p.ca_engine.in_flight()).sum();
            eprintln!(
                "cycle {cycle}: inflight {} | sched_pipe {} recirc {} ra_router {} ra_fifo {ra_fifo} ra_eng {ra_inflight} ra_out {ra_out} cl_router {} sp_fifo {sp_fifo} ca_ready {ca_ready} ca_eng {ca_inflight}",
                self.inflight,
                self.sched_pipe.len(),
                self.recirc.len(),
                self.ra_router.in_flight(),
                self.cl_router.in_flight(),
            );
            let per: Vec<(usize, usize, u64)> = self
                .pipes
                .iter()
                .map(|p| {
                    (
                        p.ca_ready.len(),
                        p.ca_engine.in_flight(),
                        p.ca_engine.issued(),
                    )
                })
                .collect();
            eprintln!("  per-pipe ca (ready, inflight, issued): {per:?}");
        }
        // 1. Memory channels advance.
        for p in &mut self.pipes {
            p.ra_engine.begin_cycle(cycle);
            p.ca_engine.begin_cycle(cycle);
        }

        // 2. Column-Access completions: finish hops, recirculate tasks.
        for pi in 0..self.n {
            while let Some(meta) = self.pipes[pi].ca_engine.pop_completed() {
                match meta {
                    CaMeta::Sp { owner, job } => {
                        let p = &mut self.pipes[owner as usize];
                        let j = &mut p.jobs[job as usize];
                        j.pending -= 1;
                        if j.pending == 0 && j.random_left == 0 && j.seq_left == 0 {
                            let done = *j;
                            p.ca_ready.push_back((done.task, done.next));
                            p.free_jobs.push(job);
                        }
                    }
                    CaMeta::Final(task, next) => {
                        self.steps += 1;
                        self.slots[task.query as usize].vertices.push(next);
                        match self.admit(task.advance(next)) {
                            Admit::Go(t) => self.recirc.push_back(t),
                            Admit::Complete(r) => self.finish(task.query, r),
                        }
                    }
                }
            }
        }

        // 3. Row-Access completions: dead-end check, hand to column router.
        for pi in 0..self.n {
            while let Some(task) = self.pipes[pi].ra_engine.pop_completed() {
                if prepared.graph().degree(task.v_curr) == 0 {
                    self.finish(task.query, Termination::DeadEnd);
                } else {
                    self.pipes[pi].ra_out.push_back(task);
                }
            }
        }

        // 4. Column Access issue: one final read per pipeline per cycle.
        for pi in 0..self.n {
            let p = &mut self.pipes[pi];
            if let Some(&(task, next)) = p.ca_ready.front() {
                match next {
                    None => {
                        // Terminated during sampling (no typed neighbor).
                        p.ca_ready.pop_front();
                        self.finish(task.query, Termination::NoTypedNeighbor);
                    }
                    Some(next) => {
                        // The final read also pays the pre-generated-RNG
                        // stream tax when a FastRW-style design is modelled.
                        let cost = 1.0 + self.rng_tax_cost;
                        if p.ca_engine.can_issue(cost)
                            && p.ca_engine
                                .try_issue(CaMeta::Final(task, next), cost, cycle)
                        {
                            p.ca_engine.add_bytes(self.final_read_bytes - 8);
                            p.ca_ready.pop_front();
                        }
                    }
                }
            }
        }

        // 5. Sampling issue: one sampling read per pipeline per cycle.
        // Neighbor lists are shuffled/striped over the Column-Access
        // channels (Fig. 4b), so in dynamic mode the k-th scan burst of a
        // job targets channel (pi + k) mod N — long hub-list scans spread
        // over the whole memory system instead of hammering one channel.
        for pi in 0..self.n {
            let Some(&job) = self.pipes[pi].sp_issue.front() else {
                continue;
            };
            let j = self.pipes[pi].jobs[job as usize];
            let meta = CaMeta::Sp {
                owner: pi as u32,
                job,
            };
            let (target, is_seq) = if j.random_left > 0 {
                (pi, false)
            } else {
                debug_assert!(j.seq_left > 0);
                let t = if self.dynamic {
                    (pi + j.seq_left as usize) % self.n
                } else {
                    pi
                };
                (t, true)
            };
            if self.pipes[target].ca_engine.try_issue(meta, 1.0, cycle) {
                if is_seq {
                    // One activation streams 8 words of the list.
                    self.pipes[target].ca_engine.add_bytes(56);
                    self.pipes[pi].jobs[job as usize].seq_left -= 1;
                } else {
                    self.pipes[pi].jobs[job as usize].random_left -= 1;
                }
                let j = &mut self.pipes[pi].jobs[job as usize];
                j.pending += 1;
                if j.random_left == 0 && j.seq_left == 0 {
                    self.pipes[pi].sp_issue.pop_front();
                }
            }
        }

        // 6. Sampling intake: decide one task per pipeline per cycle.
        for pi in 0..self.n {
            if !self.pipes[pi].sp_fifo.can_pop() {
                continue;
            }
            let task = self.pipes[pi].sp_fifo.pop().expect("checked");
            let job = self.sampling_job(prepared, task);
            let p = &mut self.pipes[pi];
            if job.random_left == 0 && job.seq_left == 0 {
                p.ca_ready.push_back((job.task, job.next));
            } else {
                let id = p.alloc_job(job);
                p.sp_issue.push_back(id);
            }
        }

        // 7. Column router delivery into sampling FIFOs.
        for pi in 0..self.n {
            if self.pipes[pi].sp_fifo.can_push() {
                if let Some(task) = self.cl_router.pop_ready(pi, cycle) {
                    self.pipes[pi].sp_fifo.push(task);
                }
            }
        }

        // 8. RA output into the column router.
        for pi in 0..self.n {
            if let Some(task) = self.pipes[pi].ra_out.front().copied() {
                let port = self.cl_port(&task);
                if self.cl_router.push(task, port, cycle) {
                    self.pipes[pi].ra_out.pop_front();
                }
            }
        }

        // 9. Row Access issue: one RP read per pipeline per cycle. An
        // on-chip cache hit (FastRW model) bypasses the memory entirely.
        let work = self.work_exists();
        let rp_extra_bytes = u64::from(self.rp_kind.bytes()) - 8;
        for pi in 0..self.n {
            if self.pipes[pi].ra_fifo.can_pop() {
                let front = *self.pipes[pi].ra_fifo.front().expect("checked");
                let hit = self
                    .rp_cached
                    .as_ref()
                    .is_some_and(|c| c[front.v_curr as usize]);
                if hit {
                    let task = self.pipes[pi].ra_fifo.pop().expect("checked");
                    self.pipes[pi].util.record_busy();
                    if prepared.graph().degree(task.v_curr) == 0 {
                        self.finish(task.query, Termination::DeadEnd);
                    } else {
                        self.pipes[pi].ra_out.push_back(task);
                    }
                } else if self.pipes[pi].ra_engine.can_issue(1.0) {
                    let task = self.pipes[pi].ra_fifo.pop().expect("checked");
                    let ok = self.pipes[pi].ra_engine.try_issue(task, 1.0, cycle);
                    debug_assert!(ok);
                    self.pipes[pi].ra_engine.add_bytes(rp_extra_bytes);
                    self.pipes[pi].util.record_busy();
                } else {
                    // Memory-stalled, not starved: the pipeline is occupied.
                    self.pipes[pi].util.record_busy();
                }
            } else if work {
                self.pipes[pi].util.record_bubble();
            } else {
                self.pipes[pi].util.record_drained();
            }
        }

        // 10. RA router delivery into pipeline FIFOs.
        for pi in 0..self.n {
            if self.pipes[pi].ra_fifo.can_push() {
                if let Some(task) = self.ra_router.pop_ready(pi, cycle) {
                    self.pipes[pi].ra_fifo.push(task);
                }
            }
        }

        // 11. Scheduler: delay line → RA router (data-aware routing).
        // Tasks are stateless, so one blocked port must not head-of-line
        // block the rest: refused tasks rotate to the back of the line
        // (in hardware each lane has its own path through the fabric).
        for _ in 0..self.n {
            match self.sched_pipe.front() {
                Some(&(ready, _)) if ready <= cycle => {
                    let (_, task) = self.sched_pipe.pop_front().expect("checked");
                    let port = self.ra_port(&task);
                    if !self.ra_router.push(task, port, cycle) {
                        self.sched_pipe.push_back((ready, task));
                    }
                }
                _ => break,
            }
        }

        // 12. Merge stage: recirculated tasks first (module ➋ priority),
        // then fresh queries, up to N per cycle through the balancer.
        for _ in 0..self.n {
            let task = if let Some(t) = self.recirc.pop_front() {
                t
            } else if let Some(t) = self.pending_inject.pop_front() {
                t
            } else {
                break;
            };
            self.sched_pipe
                .push_back((cycle + self.sched_latency, task));
        }

        // 13. Query loader.
        self.load_queries();

        // 14. Clock edge.
        for p in &mut self.pipes {
            p.ra_fifo.commit();
            p.sp_fifo.commit();
        }
        self.cycle += 1;
    }

    fn load_queries(&mut self) {
        match self.cfg.schedule {
            ScheduleMode::ZeroBubble => {
                let cap = self.cfg.effective_max_inflight();
                while !self.pending.is_empty()
                    && self.inflight < cap
                    && self.pending_inject.len() < self.n
                {
                    self.inject_next();
                }
            }
            ScheduleMode::StaticBatched => {
                // A new batch loads only when the previous fully drained.
                if self.batch_remaining == 0 && self.inflight == 0 {
                    let b = self.cfg.effective_batch_size();
                    let count = b.min(self.pending.len());
                    self.batch_remaining = count;
                    for _ in 0..count {
                        self.inject_next();
                    }
                }
            }
        }
    }

    fn inject_next(&mut self) {
        let slot = self.pending.pop_front().expect("loader checked pending");
        self.inflight += 1;
        let start = self.slots[slot as usize].vertices[0];
        let task = Task::initial(slot, start);
        match self.admit(task) {
            Admit::Go(t) => self.pending_inject.push_back(t),
            Admit::Complete(r) => self.finish(task.query, r),
        }
    }
}

fn div8(words: u32) -> u32 {
    words.div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grw_algo::{Node2VecMethod, QuerySet, ReferenceEngine, WalkEngine};
    use grw_graph::generators::{Dataset, RmatConfig, ScaleFactor};
    use grw_graph::CsrGraph;
    use grw_sim::FpgaPlatform;

    fn small_config() -> AcceleratorConfig {
        AcceleratorConfig::new()
            .platform(FpgaPlatform::AlveoU55c)
            .pipelines(4)
    }

    fn ring(n: usize) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect();
        CsrGraph::from_edges(n, &edges, true)
    }

    #[test]
    fn completes_every_query_with_full_paths() {
        let spec = WalkSpec::urw(10);
        let p = PreparedGraph::new(ring(16), &spec).unwrap();
        let qs = QuerySet::random(16, 40, 3);
        let report = Accelerator::new(small_config()).run(&p, &spec, qs.queries());
        assert_eq!(report.paths.len(), 40);
        for w in &report.paths {
            assert_eq!(w.steps(), 10, "dead-end-free ring walks run to length");
        }
        assert_eq!(report.steps, 400);
        assert_eq!(report.terminations.max_length, 40);
    }

    #[test]
    fn paths_use_only_real_edges_on_every_spec() {
        let g = Dataset::AsSkitter.generate_typed(ScaleFactor::Tiny, 3);
        let specs = [
            WalkSpec::urw(12),
            WalkSpec::ppr(12),
            WalkSpec::deepwalk(12),
            WalkSpec::node2vec(12, Node2VecMethod::Rejection),
            WalkSpec::node2vec(12, Node2VecMethod::Reservoir),
            WalkSpec::metapath(12),
        ];
        for spec in specs {
            let p = PreparedGraph::new(g.clone(), &spec).unwrap();
            let qs = QuerySet::random(g.vertex_count(), 48, 1);
            let report = Accelerator::new(small_config()).run(&p, &spec, qs.queries());
            assert_eq!(report.paths.len(), 48, "{spec}");
            for w in &report.paths {
                assert!(w.steps() <= 12, "{spec}: length bound");
                for pair in w.vertices.windows(2) {
                    assert!(
                        p.graph().has_edge(pair[0], pair[1]),
                        "{spec}: bogus edge {} -> {}",
                        pair[0],
                        pair[1]
                    );
                }
            }
        }
    }

    #[test]
    fn run_is_deterministic() {
        let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
        let spec = WalkSpec::urw(20);
        let p = PreparedGraph::new(g.clone(), &spec).unwrap();
        let qs = QuerySet::random(g.vertex_count(), 64, 9);
        let a = Accelerator::new(small_config()).run(&p, &spec, qs.queries());
        let b = Accelerator::new(small_config()).run(&p, &spec, qs.queries());
        assert_eq!(a.paths, b.paths);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn dead_ends_terminate_early() {
        // A chain into a dead end.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], true);
        let spec = WalkSpec::urw(50);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::repeated(0, 8);
        let report = Accelerator::new(small_config()).run(&p, &spec, qs.queries());
        for w in &report.paths {
            assert_eq!(w.vertices, vec![0, 1, 2, 3]);
        }
        assert_eq!(report.terminations.dead_end, 8);
    }

    #[test]
    fn ppr_mean_length_tracks_alpha() {
        let spec = WalkSpec::Ppr {
            alpha: 0.2,
            max_len: 10_000,
        };
        let p = PreparedGraph::new(ring(64), &spec).unwrap();
        let qs = QuerySet::random(64, 3000, 4);
        let report = Accelerator::new(small_config()).run(&p, &spec, qs.queries());
        let mean =
            report.paths.iter().map(|w| w.steps() as f64).sum::<f64>() / report.paths.len() as f64;
        assert!((mean - 4.0).abs() < 0.3, "mean PPR length {mean}");
    }

    #[test]
    fn distribution_matches_reference_engine() {
        // Chi-square the accelerator's next-hop choices out of a hub vertex
        // against the reference engine's.
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 0),
                (2, 0),
                (3, 0),
                (4, 0),
                (5, 0),
            ],
            true,
        );
        let spec = WalkSpec::urw(8);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::repeated(0, 1500);
        let report = Accelerator::new(small_config()).run(&p, &spec, qs.queries());
        let counts_acc = grw_algo::distribution::next_hop_counts(&report.paths, 0);
        let bins =
            grw_algo::distribution::counts_for_neighbors(&counts_acc, p.graph().neighbors(0));
        let probs = vec![0.2; 5];
        assert!(
            grw_algo::distribution::fits(&bins, &probs),
            "accelerator hub distribution skewed: {bins:?}"
        );
        // Sanity: the reference engine passes the same test.
        let ref_paths = ReferenceEngine::new(9).run(&p, &spec, qs.queries());
        let counts_ref = grw_algo::distribution::next_hop_counts(&ref_paths, 0);
        let bins_ref =
            grw_algo::distribution::counts_for_neighbors(&counts_ref, p.graph().neighbors(0));
        assert!(grw_algo::distribution::fits(&bins_ref, &probs));
    }

    #[test]
    fn async_beats_blocking() {
        let g = RmatConfig::graph500(11, 8).seed(5).generate();
        let spec = WalkSpec::urw(40);
        let p = PreparedGraph::new(g.clone(), &spec).unwrap();
        let qs = QuerySet::random(g.vertex_count(), 1200, 2);
        let full = Accelerator::new(small_config()).run(&p, &spec, qs.queries());
        let blocking = Accelerator::new(small_config().memory(MemoryMode::Blocking)).run(
            &p,
            &spec,
            qs.queries(),
        );
        let speedup = full.speedup_over(&blocking);
        assert!(
            speedup > 3.0,
            "async engine should dominate blocking access, got {speedup:.2}x"
        );
    }

    #[test]
    fn zero_bubble_beats_static_on_irregular_graphs() {
        let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny); // many dead ends
        let spec = WalkSpec::urw(40);
        let p = PreparedGraph::new(g.clone(), &spec).unwrap();
        let qs = QuerySet::random(g.vertex_count(), 600, 2);
        let dynamic = Accelerator::new(small_config()).run(&p, &spec, qs.queries());
        let static_ = Accelerator::new(small_config().schedule(ScheduleMode::StaticBatched)).run(
            &p,
            &spec,
            qs.queries(),
        );
        let speedup = dynamic.speedup_over(&static_);
        assert!(
            speedup > 1.1,
            "scheduler should win under early termination, got {speedup:.2}x"
        );
        assert!(
            dynamic.bubble_ratio < static_.bubble_ratio,
            "dynamic {:.3} vs static {:.3}",
            dynamic.bubble_ratio,
            static_.bubble_ratio
        );
    }

    #[test]
    fn near_peak_bandwidth_on_backlogged_urw() {
        let g = RmatConfig::balanced(12, 16).seed(1).generate();
        let spec = WalkSpec::urw(80);
        let p = PreparedGraph::new(g.clone(), &spec).unwrap();
        let qs = QuerySet::random(g.vertex_count(), 4000, 3);
        let report = Accelerator::new(small_config()).run(&p, &spec, qs.queries());
        // Each pipeline's channels admit ~0.469 txn/cycle; a perfectly
        // pipelined run sustains close to that in steps/cycle/pipeline.
        let steps_per_cycle = report.steps as f64 / report.cycles as f64 / 4.0;
        assert!(
            steps_per_cycle > 0.38,
            "steps/cycle/pipeline {steps_per_cycle:.3}, want near 0.469"
        );
        assert!(
            report.bubble_ratio < 0.05,
            "bubbles {:.3}",
            report.bubble_ratio
        );
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn bad_query_panics() {
        let spec = WalkSpec::urw(4);
        let p = PreparedGraph::new(ring(4), &spec).unwrap();
        let queries = [grw_algo::WalkQuery { id: 0, start: 99 }];
        let _ = Accelerator::new(small_config()).run(&p, &spec, &queries);
    }
}
