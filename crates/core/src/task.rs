//! Markov-based task decomposition (Fig. 5a).

use grw_graph::VertexId;
use grw_rng::Philox4x32;

/// Sentinel for "no previous vertex" (first hop of a walk).
pub const NO_PREV: VertexId = VertexId::MAX;

/// One stateless walk task: everything a pipeline needs to execute one hop.
///
/// `Q_y^sx = ⟨v_last, ID_y, x, …⟩` — the task carries the current vertex
/// (and the previous one for second-order walks like Node2Vec), the query
/// id for result tracking, and the hop counter. No other walk state exists
/// anywhere in the accelerator, which is what makes per-hop reassignment
/// across pipelines legal (§V-C).
///
/// The tuple must fit one pipeline word (≤512 bits); a compile-time
/// assertion enforces the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Task {
    /// Query identifier `ID_y`.
    pub query: u32,
    /// Hop counter `x` (0-based: the hop this task will perform).
    pub step: u32,
    /// The current vertex `v_last`.
    pub v_curr: VertexId,
    /// Previous vertex for second-order sampling ([`NO_PREV`] on hop 0).
    pub v_prev: VertexId,
}

// "Each decomposed task is compact, no larger than 512 bits" (§V-C).
const _TASK_FITS_A_PIPELINE_WORD: () = assert!(std::mem::size_of::<Task>() * 8 <= 512);

impl Task {
    /// The first task of a query.
    pub fn initial(query: u32, start: VertexId) -> Self {
        Self {
            query,
            step: 0,
            v_curr: start,
            v_prev: NO_PREV,
        }
    }

    /// The successor task after this hop advanced to `next`.
    pub fn advance(&self, next: VertexId) -> Self {
        Self {
            query: self.query,
            step: self.step + 1,
            v_curr: next,
            v_prev: self.v_curr,
        }
    }

    /// Previous vertex as an `Option`.
    pub fn prev(&self) -> Option<VertexId> {
        (self.v_prev != NO_PREV).then_some(self.v_prev)
    }

    /// The task's counter-based RNG: keyed by `(seed ⊕ query, step)`, so a
    /// task re-executed on any pipeline draws the same stream — randomness
    /// without mutable state, exactly the stateless-task contract.
    pub fn rng(&self, seed: u64) -> Philox4x32 {
        Philox4x32::keyed(seed ^ u64::from(self.query), u64::from(self.step))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grw_rng::RandomSource;

    #[test]
    fn initial_task_has_no_prev() {
        let t = Task::initial(3, 7);
        assert_eq!(t.prev(), None);
        assert_eq!(t.step, 0);
        assert_eq!(t.v_curr, 7);
    }

    #[test]
    fn advance_threads_the_vertex_chain() {
        let t = Task::initial(1, 10).advance(11).advance(12);
        assert_eq!(t.step, 2);
        assert_eq!(t.v_curr, 12);
        assert_eq!(t.prev(), Some(11));
    }

    #[test]
    fn task_rng_is_location_independent() {
        // The same task must draw the same randomness anywhere.
        let t = Task::initial(9, 4).advance(5);
        let a = t.rng(0xABCD).next_u64();
        let b = t.rng(0xABCD).next_u64();
        assert_eq!(a, b);
    }

    #[test]
    fn task_rng_differs_across_steps_and_queries() {
        let t1 = Task::initial(1, 0);
        let t2 = t1.advance(1);
        let u1 = Task::initial(2, 0);
        let x = t1.rng(7).next_u64();
        assert_ne!(x, t2.rng(7).next_u64());
        assert_ne!(x, u1.rng(7).next_u64());
    }

    #[test]
    fn task_is_compact() {
        assert!(std::mem::size_of::<Task>() <= 64, "task exceeds 512 bits");
    }
}
