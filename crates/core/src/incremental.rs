//! Incremental cycle-level backend: queries join a *running* pipeline.
//!
//! The micro-batch [`AcceleratorBackend`](crate::AcceleratorBackend)
//! simulates one detached run per poll, so every batch pays pipeline fill
//! at its head and drain at its tail — exactly the bulk-synchronous
//! bubble cost the paper's zero-bubble scheduler exists to eliminate
//! (and the per-batch overhead LightRW-style designs actually pay). This
//! backend instead persists one [`Machine`] across calls: `submit` parks
//! queries at the loader of the *running* machine, where they are injected
//! at the next issue slot with capacity; `poll` advances a bounded cycle
//! quantum; `drain` runs to quiescence. Under sustained load the pipeline
//! never drains between batches, so the cumulative bubble ratio stays at
//! the in-flight scheduling floor instead of re-paying fill per batch.
//!
//! Determinism: a query's randomness is keyed by its *submission index*
//! (the machine slot), so for a fixed submission order the returned paths
//! are bit-identical regardless of how submissions interleave with polls —
//! and identical to `Accelerator::run` on the concatenated query list.
//! Only the simulated timing depends on the schedule.

use crate::accelerator::{Accelerator, Machine};
use crate::backend::DEFAULT_QUEUE_CAPACITY;
use crate::report::RunReport;
use grw_algo::{BackendTelemetry, PreparedGraph, WalkBackend, WalkPath, WalkQuery, WalkSpec};
use std::borrow::Borrow;

/// Point-in-time occupancy of a persistent machine, split by where the
/// queries sit — the queue-depth observation a load generator needs to
/// tell admission backlog (awaiting injection) from pipeline residency
/// (in flight).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MachineOccupancy {
    /// Queries enqueued but not yet injected at an issue slot: the
    /// machine-internal queue that grows when offered load exceeds the
    /// pipelines' service rate.
    pub awaiting_injection: usize,
    /// Queries issued into the pipelines and still walking; bounded by
    /// the issue-slot capacity regardless of load.
    pub in_flight: usize,
}

impl MachineOccupancy {
    /// Total queries resident in the machine.
    pub fn total(&self) -> usize {
        self.awaiting_injection + self.in_flight
    }
}

/// A persistent cycle-level accelerator machine behind the streaming
/// [`WalkBackend`] interface.
///
/// The simulated clock is work-conserving: it only advances while the
/// machine holds work, so idle gaps between submissions consume no
/// simulated time (an idle machine is not charged bubbles for having no
/// demand).
///
/// # Example
///
/// ```
/// use grw_algo::{PreparedGraph, QuerySet, WalkBackend, WalkSpec};
/// use grw_graph::CsrGraph;
/// use ridgewalker::{Accelerator, AcceleratorConfig};
///
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], true);
/// let spec = WalkSpec::urw(8);
/// let prepared = PreparedGraph::new(g, &spec).unwrap();
/// let queries = QuerySet::random(4, 16, 3);
/// let accel = Accelerator::new(AcceleratorConfig::new().pipelines(2));
/// let mut backend = accel.incremental_backend(&prepared, &spec);
/// assert_eq!(backend.submit(queries.queries()), 16);
/// let paths = backend.drain();
/// assert_eq!(paths.len(), 16);
/// assert!(backend.telemetry().cycles.unwrap() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalAcceleratorBackend<P> {
    machine: Machine,
    prepared: P,
    queue_cap: usize,
    poll_quantum: u64,
}

impl Accelerator {
    /// Opens an incremental streaming backend: one persistent machine,
    /// advanced a bounded cycle quantum per poll, with submissions joining
    /// the running pipeline.
    pub fn incremental_backend<P: Borrow<PreparedGraph>>(
        &self,
        prepared: P,
        spec: &WalkSpec,
    ) -> IncrementalAcceleratorBackend<P> {
        let machine = Machine::new(*self.config(), prepared.borrow(), spec);
        IncrementalAcceleratorBackend {
            machine,
            prepared,
            queue_cap: DEFAULT_QUEUE_CAPACITY,
            poll_quantum: self.config().effective_poll_quantum(),
        }
    }
}

impl<P: Borrow<PreparedGraph>> IncrementalAcceleratorBackend<P> {
    /// Bounds the queries resident in the machine — pending injection plus
    /// in flight (backpressure point).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        self.queue_cap = cap;
        self
    }

    /// Overrides the cycle quantum one `poll` simulates.
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    pub fn poll_quantum(mut self, cycles: u64) -> Self {
        assert!(cycles > 0, "poll quantum must be positive");
        self.poll_quantum = cycles;
        self
    }

    /// Simulated cycles consumed so far (the clock only runs while the
    /// machine holds work).
    pub fn cycles(&self) -> u64 {
        self.machine.cycles()
    }

    /// Slots the persistent machine currently holds: resident queries
    /// plus completed slots not yet reclaimed. Epoch-based compaction
    /// (see [`AcceleratorConfig::slot_compact_threshold`]) rebases the
    /// table at quiescence points — every drain, and any poll-gap where
    /// the machine ran dry — so across such points a week-long streaming
    /// run holds O(resident + threshold) slots instead of one per query
    /// ever served. (A machine kept saturated with no quiescent instant
    /// defers reclamation until its next one.)
    ///
    /// [`AcceleratorConfig::slot_compact_threshold`]: crate::AcceleratorConfig::slot_compact_threshold
    pub fn slot_table_len(&self) -> usize {
        self.machine.slot_table_len()
    }

    /// Epoch rebases the machine has performed (each one reclaimed at
    /// least a threshold's worth of completed slots).
    pub fn compactions(&self) -> u64 {
        self.machine.compactions()
    }

    /// Where the resident queries currently sit: awaiting injection vs in
    /// flight in the pipelines (queue-depth observation for load tests).
    pub fn occupancy(&self) -> MachineOccupancy {
        let (awaiting_injection, in_flight) = self.machine.occupancy();
        MachineOccupancy {
            awaiting_injection,
            in_flight,
        }
    }

    /// The cumulative run report over everything executed so far. `paths`
    /// is empty — completed paths stream out of
    /// [`poll`](WalkBackend::poll)/[`drain`](WalkBackend::drain).
    pub fn cumulative_report(&self) -> RunReport {
        self.machine.report(Vec::new())
    }

    /// Takes every completed walk out of the machine, in completion order.
    fn collect(&mut self) -> Vec<WalkPath> {
        self.machine
            .take_completed()
            .into_iter()
            .map(|(_slot, path)| path)
            .collect()
    }
}

impl<P: Borrow<PreparedGraph>> WalkBackend for IncrementalAcceleratorBackend<P> {
    fn submit(&mut self, queries: &[WalkQuery]) -> usize {
        let room = self.queue_cap.saturating_sub(self.machine.resident());
        let n = room.min(queries.len());
        for q in &queries[..n] {
            self.machine.enqueue(q);
        }
        n
    }

    fn poll(&mut self) -> Vec<WalkPath> {
        self.machine
            .advance(self.prepared.borrow(), self.poll_quantum);
        self.collect()
    }

    fn drain(&mut self) -> Vec<WalkPath> {
        self.machine.run_to_quiescence(self.prepared.borrow());
        self.collect()
    }

    fn capacity_hint(&self) -> usize {
        self.queue_cap.saturating_sub(self.machine.resident())
    }

    fn in_flight(&self) -> usize {
        self.machine.resident()
    }

    fn telemetry(&self) -> BackendTelemetry {
        let (awaiting, executing) = self.machine.occupancy();
        BackendTelemetry {
            steps: self.machine.steps(),
            cycles: Some(self.machine.cycles()),
            clock_mhz: Some(self.machine.config().platform.spec().clock_mhz),
            pipeline: Some(self.machine.pipeline_meter()),
            occupancy_split: Some((awaiting, executing)),
            sampling: self.machine.sampling_counters(),
        }
    }

    fn backend_class(&self) -> grw_algo::BackendClass {
        grw_algo::BackendClass::Accelerator
    }

    fn cost_hint(&self) -> f64 {
        self.prepared.borrow().sampler_cost_factor()
            / f64::from(self.machine.config().effective_pipelines().max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use grw_algo::{run_streamed, QuerySet};
    use grw_graph::generators::{Dataset, ScaleFactor};
    use grw_sim::FpgaPlatform;

    fn accel() -> Accelerator {
        Accelerator::new(
            AcceleratorConfig::new()
                .platform(FpgaPlatform::AlveoU55c)
                .pipelines(4),
        )
    }

    fn setup(len: u32, n: usize) -> (grw_algo::PreparedGraph, grw_algo::WalkSpec, QuerySet) {
        let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
        let spec = grw_algo::WalkSpec::urw(len);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), n, 3);
        (p, spec, qs)
    }

    #[test]
    fn paths_match_the_batch_run_bit_for_bit() {
        let (p, spec, qs) = setup(16, 128);
        let legacy = accel().run(&p, &spec, qs.queries());
        let mut backend = accel().incremental_backend(&p, &spec);
        let streamed = run_streamed(&mut backend, qs.queries());
        assert_eq!(legacy.paths, streamed);
        assert_eq!(backend.in_flight(), 0);
        let cum = backend.cumulative_report();
        assert_eq!(cum.steps, legacy.steps);
        assert_eq!(cum.terminations, legacy.terminations);
    }

    #[test]
    fn poll_advances_a_bounded_quantum() {
        let (p, spec, qs) = setup(40, 512);
        let mut backend = accel()
            .incremental_backend(&p, &spec)
            .poll_quantum(64)
            .queue_capacity(4096);
        assert_eq!(backend.submit(qs.queries()), 512);
        let before = backend.cycles();
        backend.poll();
        assert_eq!(backend.cycles(), before + 64, "one quantum per poll");
        // Drain finishes everything; polling the now-idle machine
        // consumes no simulated time.
        let done = backend.drain();
        assert_eq!(done.len(), 512, "drain must finish every query");
        let settled = backend.cycles();
        assert!(backend.poll().is_empty());
        assert_eq!(backend.cycles(), settled);
    }

    #[test]
    fn queries_join_the_running_machine_without_a_restart() {
        let (p, spec, qs) = setup(30, 300);
        let mut backend = accel()
            .incremental_backend(&p, &spec)
            .poll_quantum(128)
            .queue_capacity(4096);
        let (first, second) = qs.queries().split_at(150);
        assert_eq!(backend.submit(first), 150);
        let mut got = backend.poll().len();
        let mid = backend.cycles();
        assert!(mid > 0);
        // Second wave joins while the first is still in flight.
        assert!(backend.in_flight() > 0, "first wave must still be running");
        assert_eq!(backend.submit(second), 150);
        got += backend.drain().len();
        assert_eq!(got, 300);
        // One continuous clock, no per-batch reset.
        assert!(backend.cycles() > mid);
        assert_eq!(backend.telemetry().steps, backend.cumulative_report().steps);
        assert!(backend.telemetry().steps > 0);
    }

    #[test]
    fn backpressure_bounds_residency() {
        let (p, spec, qs) = setup(4, 64);
        let mut backend = accel()
            .incremental_backend(&p, &spec)
            .queue_capacity(10)
            .poll_quantum(1_000_000);
        assert_eq!(backend.submit(qs.queries()), 10);
        assert_eq!(backend.capacity_hint(), 0);
        assert_eq!(backend.submit(qs.queries()), 0);
        assert_eq!(backend.poll().len(), 10);
        assert_eq!(backend.capacity_hint(), 10);
    }

    #[test]
    fn occupancy_tracks_residency_split() {
        let (p, spec, qs) = setup(24, 200);
        let mut backend = accel()
            .incremental_backend(&p, &spec)
            .poll_quantum(32)
            .queue_capacity(4096);
        assert_eq!(backend.occupancy(), MachineOccupancy::default());
        assert_eq!(backend.submit(qs.queries()), 200);
        let occ = backend.occupancy();
        assert_eq!(occ.total(), backend.in_flight());
        assert_eq!(occ.total(), 200);
        assert_eq!(occ.in_flight, 0, "nothing issued before the first poll");
        backend.poll();
        let occ = backend.occupancy();
        assert!(occ.in_flight > 0, "polling issues queries into pipelines");
        assert_eq!(occ.total(), backend.in_flight());
        backend.drain();
        assert_eq!(backend.occupancy().total(), 0);
    }

    #[test]
    fn slot_table_compaction_bounds_memory_and_preserves_paths() {
        let (p, spec, qs) = setup(12, 2048);
        // Ground truth without compaction in reach (threshold beyond the
        // stream length).
        let baseline = accel().run(&p, &spec, qs.queries());

        let tight = Accelerator::new(
            AcceleratorConfig::new()
                .platform(FpgaPlatform::AlveoU55c)
                .pipelines(4)
                .slot_compact_threshold(64),
        );
        let mut backend = tight.incremental_backend(&p, &spec).queue_capacity(4096);
        let mut got = Vec::new();
        let mut peak_slots = 0;
        // Wave-drain-wave: every drain leaves a quiescence point where the
        // dead prefix can be reclaimed.
        for wave in qs.queries().chunks(128) {
            assert_eq!(backend.submit(wave), wave.len());
            got.extend(backend.drain());
            peak_slots = peak_slots.max(backend.slot_table_len());
        }
        assert_eq!(got.len(), 2048);
        assert!(
            backend.compactions() > 0,
            "64-slot threshold over 2048 queries must compact"
        );
        assert!(
            peak_slots <= 64 + 128,
            "slot table must stay O(threshold + wave), saw {peak_slots}"
        );
        // Bit-identical to the uncompacted batch run: the RNG is keyed by
        // the global submission index, so rebasing is invisible.
        got.sort_by_key(|w| w.query);
        assert_eq!(got, baseline.paths);
    }

    #[test]
    fn static_mode_timing_is_compaction_invariant() {
        use crate::config::ScheduleMode;
        // Static scheduling binds queries to pipelines by id; keyed off
        // the global submission index, a rebased run must reproduce not
        // just the paths but the exact simulated timing.
        let (p, spec, qs) = setup(12, 512);
        let base_cfg = AcceleratorConfig::new()
            .platform(FpgaPlatform::AlveoU55c)
            .pipelines(4)
            .schedule(ScheduleMode::StaticBatched);
        let run = |threshold: usize| {
            let mut backend = Accelerator::new(base_cfg.slot_compact_threshold(threshold))
                .incremental_backend(&p, &spec)
                .queue_capacity(4096);
            let mut got = Vec::new();
            for wave in qs.queries().chunks(64) {
                assert_eq!(backend.submit(wave), wave.len());
                got.extend(backend.drain());
            }
            got.sort_by_key(|w| w.query);
            (got, backend.cycles(), backend.compactions())
        };
        let (paths_compacted, cycles_compacted, compactions) = run(16);
        let (paths_plain, cycles_plain, none) = run(1 << 20);
        assert!(compactions > 0, "tight threshold must rebase");
        assert_eq!(none, 0, "huge threshold never rebases");
        assert_eq!(paths_compacted, paths_plain);
        assert_eq!(
            cycles_compacted, cycles_plain,
            "static routing keyed by the global index keeps timing identical"
        );
    }

    #[test]
    fn compaction_waits_for_quiescence() {
        let (p, spec, qs) = setup(30, 256);
        let mut backend = Accelerator::new(
            AcceleratorConfig::new()
                .platform(FpgaPlatform::AlveoU55c)
                .pipelines(4)
                .slot_compact_threshold(1),
        )
        .incremental_backend(&p, &spec)
        .poll_quantum(32)
        .queue_capacity(4096);
        assert_eq!(backend.submit(qs.queries()), 256);
        backend.poll();
        assert!(backend.in_flight() > 0, "mid-run: work resident");
        let before = backend.compactions();
        // Enqueue while in flight: no compaction may happen.
        assert_eq!(backend.submit(&qs.queries()[..1]), 1);
        assert_eq!(backend.compactions(), before);
        let done = backend.drain();
        assert_eq!(done.len(), 257);
        // The drain's final take_completed sees quiescence and reclaims.
        assert!(backend.compactions() > before);
        assert_eq!(backend.slot_table_len(), 0, "everything reclaimed");
    }

    #[test]
    fn sustained_load_has_lower_bubble_ratio_than_micro_batching() {
        let (p, spec, qs) = setup(16, 960);
        let mut batch = accel().backend(&p, &spec);
        let mut inc = accel()
            .incremental_backend(&p, &spec)
            // A quantum smaller than one wave's work keeps the machine
            // backlogged: the next wave arrives before this one drains.
            .poll_quantum(128)
            .queue_capacity(1 << 20);
        let mut b_done = 0;
        let mut i_done = 0;
        for wave in qs.queries().chunks(64) {
            assert_eq!(batch.submit(wave), wave.len());
            b_done += batch.poll().len();
            assert_eq!(inc.submit(wave), wave.len());
            i_done += inc.poll().len();
        }
        b_done += batch.drain().len();
        i_done += inc.drain().len();
        assert_eq!(b_done, 960);
        assert_eq!(i_done, 960);
        let br = batch.cumulative_report();
        let ir = inc.cumulative_report();
        assert!(
            ir.bubble_ratio < br.bubble_ratio,
            "incremental {:.4} must beat batch {:.4}",
            ir.bubble_ratio,
            br.bubble_ratio
        );
        assert!(
            ir.pipeline_utilization > br.pipeline_utilization,
            "incremental util {:.4} vs batch {:.4}",
            ir.pipeline_utilization,
            br.pipeline_utilization
        );
    }
}
