//! The data-aware Task Router.
//!
//! A butterfly interconnect that delivers each task to the memory channel
//! holding the data it needs next: the Row-Access channel owning
//! `RP[v_curr]` for recirculated tasks, or the Column-Access channel named
//! in a freshly read RP entry (§IV-B step ➍). The performance-relevant
//! properties are its fixed pipeline latency (`2·log2(N)` cycles — two per
//! stage) and the II=1 rate of each output port; this model captures both
//! while keeping per-cycle cost O(ports).

use grw_sim::Cycle;
use std::collections::VecDeque;

/// A fixed-latency, per-port-rate-limited routing fabric.
///
/// # Example
///
/// ```
/// use ridgewalker::TaskRouter;
///
/// let mut r: TaskRouter<&str> = TaskRouter::new(4);
/// r.push("task", 2, 0);
/// assert!(r.pop_ready(2, 0).is_none()); // still in flight
/// let lat = r.latency();
/// assert_eq!(r.pop_ready(2, lat), Some("task"));
/// ```
#[derive(Debug, Clone)]
pub struct TaskRouter<T> {
    latency: Cycle,
    per_port_window: usize,
    ports: Vec<VecDeque<(Cycle, T)>>,
    last_pop: Vec<Option<Cycle>>,
    routed: u64,
}

impl<T> TaskRouter<T> {
    /// In-flight budget per output port before the fabric backpressures.
    const DEFAULT_WINDOW: usize = 8;

    /// Creates a router with `ports` outputs (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero or not a power of two.
    pub fn new(ports: usize) -> Self {
        assert!(
            ports > 0 && ports.is_power_of_two(),
            "butterfly ports must be a power of two"
        );
        let stages = ports.trailing_zeros() as Cycle;
        Self {
            latency: 2 * stages,
            per_port_window: Self::DEFAULT_WINDOW + 2 * stages as usize,
            ports: (0..ports).map(|_| VecDeque::new()).collect(),
            last_pop: vec![None; ports],
            routed: 0,
        }
    }

    /// Number of output ports.
    pub fn ports(&self) -> usize {
        self.ports.len()
    }

    /// Pipeline latency through the fabric in cycles.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Whether a task for `port` can enter this cycle (backpressure view).
    pub fn can_push(&self, port: usize) -> bool {
        self.ports[port].len() < self.per_port_window
    }

    /// Routes `value` toward `port`, entering at `cycle`.
    ///
    /// Returns `false` when that port's window is full (backpressure).
    pub fn push(&mut self, value: T, port: usize, cycle: Cycle) -> bool {
        if !self.can_push(port) {
            return false;
        }
        self.ports[port].push_back((cycle + self.latency, value));
        self.routed += 1;
        true
    }

    /// Pops the next task that has traversed the fabric to `port`.
    /// Each port delivers at most one task per cycle (II = 1).
    pub fn pop_ready(&mut self, port: usize, cycle: Cycle) -> Option<T> {
        if self.last_pop[port] == Some(cycle) {
            return None; // one per port per cycle
        }
        if self.ports[port]
            .front()
            .is_some_and(|&(ready, _)| ready <= cycle)
        {
            self.last_pop[port] = Some(cycle);
            return self.ports[port].pop_front().map(|(_, v)| v);
        }
        None
    }

    /// Tasks currently inside the fabric (all ports).
    pub fn in_flight(&self) -> usize {
        self.ports.iter().map(VecDeque::len).sum()
    }

    /// Whether the fabric holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.in_flight() == 0
    }

    /// Lifetime routed count.
    pub fn routed(&self) -> u64 {
        self.routed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_scales_with_ports() {
        assert_eq!(TaskRouter::<u8>::new(1).latency(), 0);
        assert_eq!(TaskRouter::<u8>::new(4).latency(), 4);
        assert_eq!(TaskRouter::<u8>::new(16).latency(), 8);
    }

    #[test]
    fn tasks_arrive_after_latency_in_order() {
        let mut r: TaskRouter<u32> = TaskRouter::new(4);
        r.push(1, 0, 0);
        r.push(2, 0, 1);
        assert_eq!(r.pop_ready(0, 3), None);
        assert_eq!(r.pop_ready(0, 4), Some(1));
        assert_eq!(r.pop_ready(0, 5), Some(2));
        assert!(r.is_empty());
    }

    #[test]
    fn each_port_delivers_once_per_cycle() {
        let mut r: TaskRouter<u32> = TaskRouter::new(2);
        r.push(1, 1, 0);
        r.push(2, 1, 0);
        let at = r.latency() + 1;
        assert_eq!(r.pop_ready(1, at), Some(1));
        assert_eq!(r.pop_ready(1, at), None, "II = 1 per port");
        assert_eq!(r.pop_ready(1, at + 1), Some(2));
    }

    #[test]
    fn ports_are_independent() {
        let mut r: TaskRouter<u32> = TaskRouter::new(2);
        r.push(10, 0, 0);
        r.push(11, 1, 0);
        let at = r.latency();
        assert_eq!(r.pop_ready(0, at), Some(10));
        assert_eq!(r.pop_ready(1, at), Some(11));
    }

    #[test]
    fn window_exerts_backpressure() {
        let mut r: TaskRouter<u32> = TaskRouter::new(2);
        let mut accepted = 0;
        for i in 0..100 {
            if r.push(i, 0, 0) {
                accepted += 1;
            }
        }
        assert!(accepted < 100, "window must bound in-flight tasks");
        assert_eq!(accepted, r.in_flight());
        assert!(!r.can_push(0));
        assert!(r.can_push(1), "other ports unaffected");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_port_count_panics() {
        let _: TaskRouter<u8> = TaskRouter::new(3);
    }
}
