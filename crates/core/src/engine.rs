//! The asynchronous memory-access engine (Fig. 6).
//!
//! The engine decouples request issue from response arrival: the *Request
//! Proxy* strips a task's address, tags the DRAM transaction with a free
//! transaction id, and parks the metadata in an on-chip queue; the
//! *Response Proxy* reunites returning data with its metadata and hands a
//! complete task downstream. Because the engine never waits on input
//! readiness, the pipeline behind it keeps issuing — up to the transaction
//! id capacity (64–128) — which is how pointer-chasing latency is amortised
//! across concurrent queries (Observation #1).

use grw_sim::{Cycle, MemoryChannel, MemoryChannelSpec};
use std::collections::VecDeque;

/// A non-blocking request/response proxy over one memory channel.
///
/// `M` is the metadata carried alongside each transaction (the task tuple
/// in the real design).
///
/// # Example
///
/// ```
/// use grw_sim::MemoryChannelSpec;
/// use ridgewalker::AsyncAccessEngine;
///
/// let spec = MemoryChannelSpec::default();
/// let mut e: AsyncAccessEngine<&str> = AsyncAccessEngine::new(spec, 64);
/// e.begin_cycle(0);
/// assert!(e.try_issue("row of v2", 1.0, 0));
/// // ... ~latency cycles later the metadata pops out of pop_completed().
/// ```
#[derive(Debug, Clone)]
pub struct AsyncAccessEngine<M> {
    channel: MemoryChannel,
    /// Metadata slab indexed by transaction id (the BRAM metadata queue).
    slab: Vec<Option<M>>,
    free_ids: Vec<u32>,
    completed: VecDeque<M>,
    issued: u64,
    bytes: u64,
}

impl<M> AsyncAccessEngine<M> {
    /// Creates an engine with `txn_ids` transaction-id slots.
    ///
    /// # Panics
    ///
    /// Panics if `txn_ids == 0`.
    pub fn new(spec: MemoryChannelSpec, txn_ids: usize) -> Self {
        assert!(txn_ids > 0, "need at least one transaction id");
        Self {
            channel: MemoryChannel::new(spec),
            slab: (0..txn_ids).map(|_| None).collect(),
            free_ids: (0..txn_ids as u32).rev().collect(),
            completed: VecDeque::new(),
            issued: 0,
            bytes: 0,
        }
    }

    /// Advances the channel clock and moves matured transactions to the
    /// completion queue. Call once per cycle.
    pub fn begin_cycle(&mut self, cycle: Cycle) {
        self.channel.begin_cycle(cycle);
        while let Some(token) = self.channel.pop_ready() {
            let meta = self.slab[token as usize]
                .take()
                .expect("completed token must hold metadata");
            self.free_ids.push(token as u32);
            self.completed.push_back(meta);
        }
    }

    /// Whether a request of `cost` credits could be issued right now.
    pub fn can_issue(&self, cost: f64) -> bool {
        !self.free_ids.is_empty() && self.channel.can_issue(cost)
    }

    /// Issues a request carrying `meta`; returns `false` if refused
    /// (no transaction id, no rate credit, or outstanding window full).
    pub fn try_issue(&mut self, meta: M, cost: f64, cycle: Cycle) -> bool {
        let Some(&id) = self.free_ids.last() else {
            return false;
        };
        if !self.channel.try_issue(u64::from(id), cost, cycle) {
            return false;
        }
        self.free_ids.pop();
        self.slab[id as usize] = Some(meta);
        self.issued += 1;
        // Partial-beat costs still move whole bytes on the bus: round up,
        // and never account a transaction at zero bytes.
        self.bytes += ((cost * 8.0).ceil() as u64).max(1);
        true
    }

    /// Record extra bytes moved by an already-issued transaction (wide RP
    /// entries move 16/32 bytes in one activation).
    pub fn add_bytes(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Pops one completed request's metadata.
    pub fn pop_completed(&mut self) -> Option<M> {
        self.completed.pop_front()
    }

    /// Requests in flight (issued, not yet completed).
    pub fn in_flight(&self) -> usize {
        self.slab.len() - self.free_ids.len() - self.completed.len()
    }

    /// Whether the engine holds no work at all.
    pub fn is_idle(&self) -> bool {
        self.in_flight() == 0 && self.completed.is_empty()
    }

    /// Completed-but-unconsumed count.
    pub fn pending_completions(&self) -> usize {
        self.completed.len()
    }

    /// Lifetime issued transactions.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Lifetime bytes moved (footprint accounting).
    pub fn bytes_moved(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(outstanding: usize) -> MemoryChannelSpec {
        MemoryChannelSpec {
            random_mtps: 320_000.0, // 1000 txn/cycle: never rate-limited
            clock_mhz: 320.0,
            latency_cycles: 20,
            max_outstanding: outstanding,
        }
    }

    #[test]
    fn metadata_survives_the_round_trip() {
        let mut e: AsyncAccessEngine<u32> = AsyncAccessEngine::new(spec(64), 64);
        e.begin_cycle(0);
        assert!(e.try_issue(777, 1.0, 0));
        let mut got = None;
        for c in 1..40 {
            e.begin_cycle(c);
            if let Some(m) = e.pop_completed() {
                got = Some(m);
                break;
            }
        }
        assert_eq!(got, Some(777));
        assert!(e.is_idle());
    }

    #[test]
    fn txn_ids_bound_concurrency() {
        let mut e: AsyncAccessEngine<u32> = AsyncAccessEngine::new(spec(1024), 4);
        e.begin_cycle(0);
        let mut ok = 0;
        for i in 0..10 {
            if e.try_issue(i, 0.001, 0) {
                ok += 1;
            }
        }
        assert_eq!(ok, 4, "transaction-id slab must cap in-flight requests");
        assert_eq!(e.in_flight(), 4);
    }

    #[test]
    fn blocking_configuration_serialises() {
        // One outstanding request = the ablation's blocking AXI access.
        let mut e: AsyncAccessEngine<u32> = AsyncAccessEngine::new(spec(1), 64);
        e.begin_cycle(0);
        assert!(e.try_issue(1, 1.0, 0));
        assert!(!e.try_issue(2, 1.0, 0), "second issue must block");
        // After the first completes, the next can go.
        let mut freed = false;
        for c in 1..40 {
            e.begin_cycle(c);
            if e.pop_completed().is_some() {
                freed = true;
                assert!(e.try_issue(2, 1.0, c));
                break;
            }
        }
        assert!(freed);
    }

    #[test]
    fn many_outstanding_requests_overlap() {
        let mut e: AsyncAccessEngine<u32> = AsyncAccessEngine::new(spec(128), 128);
        // Issue one request per cycle for 64 cycles; with latency 20 the
        // engine should be fully overlapped, completing ~1 per cycle after
        // the fill delay. Total time ≈ 64 + latency + jitter, far below the
        // serialised 64 × 20.
        let mut completed = 0;
        let mut cycle = 0;
        let mut next = 0u32;
        while completed < 64 {
            e.begin_cycle(cycle);
            if next < 64 && e.try_issue(next, 1.0, cycle) {
                next += 1;
            }
            while e.pop_completed().is_some() {
                completed += 1;
            }
            cycle += 1;
            assert!(cycle < 200, "async engine failed to overlap latency");
        }
        assert!(cycle < 120, "completion took {cycle} cycles");
    }

    #[test]
    fn byte_accounting_tracks_issues() {
        let mut e: AsyncAccessEngine<u32> = AsyncAccessEngine::new(spec(8), 8);
        e.begin_cycle(0);
        e.try_issue(0, 1.0, 0);
        assert_eq!(e.bytes_moved(), 8);
        e.add_bytes(24); // a 256-bit RP entry moves 24 extra bytes
        assert_eq!(e.bytes_moved(), 32);
    }

    #[test]
    fn sub_byte_costs_round_up_not_down() {
        let mut e: AsyncAccessEngine<u32> = AsyncAccessEngine::new(spec(8), 8);
        e.begin_cycle(0);
        // 0.3 credits = 2.4 bytes of bus traffic: must charge 3, not 2.
        assert!(e.try_issue(0, 0.3, 0));
        assert_eq!(e.bytes_moved(), 3);
        // A fractional credit below one byte still moves one byte.
        assert!(e.try_issue(1, 0.01, 0));
        assert_eq!(e.bytes_moved(), 4);
        // 1.125 credits (the FastRW RNG-tax shape) = 9 bytes exactly.
        assert!(e.try_issue(2, 1.125, 0));
        assert_eq!(e.bytes_moved(), 13);
    }

    #[test]
    #[should_panic(expected = "transaction id")]
    fn zero_ids_panics() {
        let _: AsyncAccessEngine<u8> = AsyncAccessEngine::new(spec(1), 0);
    }
}
