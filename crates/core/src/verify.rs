//! Statistical equivalence checking between execution engines.
//!
//! The accelerator cannot (and must not need to) replay the reference
//! engine's exact paths — out-of-order execution with counter-based RNG
//! produces different, equally valid samples. What must hold is
//! *distributional* equivalence: for every vertex, both engines draw next
//! hops from the same transition law. This module implements that check
//! as a reusable verdict, used by the integration tests and available to
//! downstream users validating their own engines.

use grw_algo::{distribution, WalkPath};
use grw_graph::{CsrGraph, VertexId};

/// Outcome of comparing two engines' walks over one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivalenceReport {
    /// Vertices whose transition distributions were compared.
    pub vertices_checked: usize,
    /// Vertices skipped for insufficient samples.
    pub vertices_skipped: usize,
    /// Vertices where the chi-square test rejected equivalence.
    pub mismatches: Vec<VertexId>,
}

impl EquivalenceReport {
    /// Whether the two engines are statistically indistinguishable at the
    /// tested vertices.
    pub fn is_equivalent(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Compares the empirical next-hop distributions of two path sets at every
/// vertex with at least `min_samples` outgoing observations in *both* sets.
///
/// The comparison is a two-sample chi-square on the neighbor bins: for
/// each checked vertex, the first set's empirical frequencies serve as the
/// expected distribution for the second set's counts. `min_samples` should
/// be large enough that expected bin counts are ≥ ~5.
///
/// # Panics
///
/// Panics if `min_samples == 0`.
pub fn compare_transition_distributions(
    graph: &CsrGraph,
    reference: &[WalkPath],
    candidate: &[WalkPath],
    min_samples: u64,
) -> EquivalenceReport {
    assert!(min_samples > 0, "need at least one sample");
    let mut checked = 0usize;
    let mut skipped = 0usize;
    let mut mismatches = Vec::new();
    for v in 0..graph.vertex_count() as VertexId {
        let neighbors = graph.neighbors(v);
        if neighbors.len() < 2 {
            continue;
        }
        let ref_counts = distribution::next_hop_counts(reference, v);
        let cand_counts = distribution::next_hop_counts(candidate, v);
        let ref_total: u64 = ref_counts.values().sum();
        let cand_total: u64 = cand_counts.values().sum();
        if ref_total < min_samples || cand_total < min_samples {
            skipped += 1;
            continue;
        }
        checked += 1;
        let ref_bins = distribution::counts_for_neighbors(&ref_counts, neighbors);
        let cand_bins = distribution::counts_for_neighbors(&cand_counts, neighbors);
        // Proper two-sample chi-square: both samples are noisy, so the
        // statistic is Σ (√(N2/N1)·O1 − √(N1/N2)·O2)² / (O1 + O2) over
        // bins observed in either sample, with df = bins − 1.
        let n1 = ref_total as f64;
        let n2 = cand_total as f64;
        let r = (n2 / n1).sqrt();
        let mut stat = 0.0;
        let mut bins = 0usize;
        for (&o1, &o2) in ref_bins.iter().zip(&cand_bins) {
            let total = o1 + o2;
            if total == 0 {
                continue;
            }
            bins += 1;
            let d = r * o1 as f64 - o2 as f64 / r;
            stat += d * d / total as f64;
        }
        if bins >= 2 && stat > distribution::chi_square_critical(bins - 1, 3.09) {
            mismatches.push(v);
        }
    }
    EquivalenceReport {
        vertices_checked: checked,
        vertices_skipped: skipped,
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Accelerator, AcceleratorConfig};
    use grw_algo::{PreparedGraph, QuerySet, ReferenceEngine, WalkEngine, WalkSpec};
    use grw_graph::generators::RmatConfig;

    #[test]
    fn accelerator_is_equivalent_to_the_reference() {
        let g = RmatConfig::balanced(7, 8).seed(3).generate();
        let spec = WalkSpec::urw(30);
        let p = PreparedGraph::new(g.clone(), &spec).unwrap();
        let qs = QuerySet::random(g.vertex_count(), 3_000, 1);
        let reference = ReferenceEngine::new(4).run(&p, &spec, qs.queries());
        let accel =
            Accelerator::new(AcceleratorConfig::new().pipelines(4)).run(&p, &spec, qs.queries());
        let report = compare_transition_distributions(&g, &reference, &accel.paths, 200);
        assert!(report.vertices_checked > 10, "{report:?}");
        // At the 99.9% level a few false rejections are expected; demand
        // that almost every vertex passes.
        assert!(
            report.mismatches.len() <= report.vertices_checked / 50 + 1,
            "too many mismatches: {report:?}"
        );
    }

    #[test]
    fn a_biased_engine_is_detected() {
        let g = RmatConfig::balanced(7, 8).seed(3).generate();
        let spec = WalkSpec::urw(30);
        let p = PreparedGraph::new(g.clone(), &spec).unwrap();
        let qs = QuerySet::random(g.vertex_count(), 2_000, 1);
        let reference = ReferenceEngine::new(4).run(&p, &spec, qs.queries());
        // A deliberately wrong engine: always takes the first neighbor.
        let biased: Vec<WalkPath> = qs
            .queries()
            .iter()
            .map(|q| {
                let mut vs = vec![q.start];
                let mut cur = q.start;
                for _ in 0..30 {
                    let ns = g.neighbors(cur);
                    if ns.is_empty() {
                        break;
                    }
                    cur = ns[0];
                    vs.push(cur);
                }
                WalkPath::new(q.id, vs)
            })
            .collect();
        let report = compare_transition_distributions(&g, &reference, &biased, 100);
        assert!(
            report.mismatches.len() > report.vertices_checked / 2,
            "bias went undetected: {report:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_min_samples_panics() {
        let g = RmatConfig::balanced(4, 2).seed(0).generate();
        let _ = compare_transition_distributions(&g, &[], &[], 0);
    }
}
