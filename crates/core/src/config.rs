//! Accelerator configuration, including the Fig. 11 ablation toggles.

use grw_queueing::ridgewalker_fifo_depth;
use grw_sim::FpgaPlatform;

/// How queries are scheduled onto pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScheduleMode {
    /// The zero-bubble scheduler: per-hop dynamic reassignment, ready tasks
    /// fill any open slot immediately.
    #[default]
    ZeroBubble,
    /// Static bulk-synchronous batches: queries are bound to pipelines by
    /// id and a new batch starts only when the whole previous batch has
    /// finished (the FastRW/LightRW-style baseline of Fig. 11).
    StaticBatched,
}

/// How memory accesses are issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemoryMode {
    /// The asynchronous access engine: up to 128 outstanding non-blocking
    /// requests per channel (Fig. 6).
    #[default]
    Asynchronous,
    /// Plain AXI access without the asynchronous engine: a standard HLS
    /// `m_axi` master with a small request window (8 outstanding); the
    /// pipeline effectively stalls on pointer chases (ablation baseline).
    Blocking,
}

/// Full configuration of an [`crate::Accelerator`].
///
/// # Example
///
/// ```
/// use grw_sim::FpgaPlatform;
/// use ridgewalker::{AcceleratorConfig, MemoryMode, ScheduleMode};
///
/// let cfg = AcceleratorConfig::new()
///     .platform(FpgaPlatform::AlveoU50)
///     .pipelines(8)
///     .schedule(ScheduleMode::StaticBatched)
///     .memory(MemoryMode::Blocking);
/// assert_eq!(cfg.effective_pipelines(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Target board (memory channels, clock, latency).
    pub platform: FpgaPlatform,
    /// Pipeline count override; `None` uses `channels / 2` (§VIII-A).
    pub pipeline_override: Option<u32>,
    /// Scheduling mode (ablation axis 1).
    pub schedule: ScheduleMode,
    /// Memory-access mode (ablation axis 2).
    pub memory: MemoryMode,
    /// Per-pipeline input FIFO depth; `None` uses Theorem VI.1's
    /// `1 + 4·log2(N)`.
    pub fifo_depth: Option<usize>,
    /// Concurrent in-flight queries (dynamic mode); `None` uses `256·N`
    /// (Little's law: a ~250-cycle hop round-trip at ~0.5 steps/cycle per
    /// pipeline needs ≈125 resident hops to saturate; the hardware's
    /// 512-entry metadata queues provide the headroom, and modest
    /// oversubscription keeps queue delay bounded).
    pub max_inflight: Option<usize>,
    /// Batch size for static mode; `None` uses `16·N`.
    pub batch_size: Option<usize>,
    /// Seed for all counter-based task randomness.
    pub seed: u64,
    /// Safety bound on simulated cycles.
    pub max_cycles: u64,
    /// On-chip RP cache capacity in entries, held by in-degree rank
    /// (models FastRW's frequency-based caching; `None` = no cache).
    pub rp_cache_entries: Option<usize>,
    /// Sequential 64-bit reads per step spent streaming pre-generated
    /// random numbers from memory (FastRW's CPU-side RNG; 0 = on-chip RNG).
    pub rng_seq_reads_per_step: u32,
    /// Override of the Row-Access channel outstanding window (baselines
    /// with in-order pointer chases use small values).
    pub ra_outstanding: Option<usize>,
    /// Override of the Column-Access channel outstanding window.
    pub ca_outstanding: Option<usize>,
    /// Cycle quantum an incremental backend's `poll` simulates; `None`
    /// uses `512 · pipelines` (a few hundred queries' worth of progress at
    /// ~0.5 steps/cycle/pipeline, so a serving tick keeps pace with
    /// micro-batch-sized arrival waves).
    pub poll_quantum: Option<u64>,
    /// Completed slots that trigger an epoch rebase of the machine's slot
    /// table at the next quiescence point (nothing in flight, completed
    /// paths collected — every drain or idle gap between waves); `None`
    /// uses 4096. Compaction is invisible to walk contents (randomness
    /// is keyed by the global submission index, epoch base + local slot)
    /// — it only reclaims the table's memory. A machine held saturated
    /// without ever quiescing defers reclamation until its next
    /// quiescent instant.
    pub slot_compact_threshold: Option<usize>,
}

impl AcceleratorConfig {
    /// The default configuration: U55C, zero-bubble, asynchronous.
    pub fn new() -> Self {
        Self {
            platform: FpgaPlatform::AlveoU55c,
            pipeline_override: None,
            schedule: ScheduleMode::ZeroBubble,
            memory: MemoryMode::Asynchronous,
            fifo_depth: None,
            max_inflight: None,
            batch_size: None,
            seed: 0x5EED,
            max_cycles: 2_000_000_000,
            rp_cache_entries: None,
            rng_seq_reads_per_step: 0,
            ra_outstanding: None,
            ca_outstanding: None,
            poll_quantum: None,
            slot_compact_threshold: None,
        }
    }

    /// Enables a FastRW-style on-chip RP cache of `entries` entries.
    pub fn rp_cache(mut self, entries: usize) -> Self {
        self.rp_cache_entries = Some(entries);
        self
    }

    /// Charges `reads` sequential 64-bit reads per step for pre-generated
    /// random numbers (FastRW's CPU-side RNG stream).
    pub fn rng_stream_tax(mut self, reads: u32) -> Self {
        self.rng_seq_reads_per_step = reads;
        self
    }

    /// Overrides the Row-Access outstanding window only.
    pub fn ra_outstanding(mut self, n: usize) -> Self {
        assert!(n > 0, "outstanding window must be positive");
        self.ra_outstanding = Some(n);
        self
    }

    /// Overrides the Column-Access outstanding window only.
    pub fn ca_outstanding(mut self, n: usize) -> Self {
        assert!(n > 0, "outstanding window must be positive");
        self.ca_outstanding = Some(n);
        self
    }

    /// Resolved RA outstanding window.
    pub fn effective_ra_outstanding(&self) -> usize {
        self.ra_outstanding
            .unwrap_or_else(|| self.effective_outstanding())
    }

    /// Resolved CA outstanding window.
    pub fn effective_ca_outstanding(&self) -> usize {
        self.ca_outstanding
            .unwrap_or_else(|| self.effective_outstanding())
    }

    /// Sets the platform.
    pub fn platform(mut self, platform: FpgaPlatform) -> Self {
        self.platform = platform;
        self
    }

    /// Overrides the pipeline count.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two (butterfly requirement).
    pub fn pipelines(mut self, n: u32) -> Self {
        assert!(n > 0, "need at least one pipeline");
        assert!(n.is_power_of_two(), "butterfly fabrics need a power of two");
        self.pipeline_override = Some(n);
        self
    }

    /// Sets the scheduling mode.
    pub fn schedule(mut self, mode: ScheduleMode) -> Self {
        self.schedule = mode;
        self
    }

    /// Sets the memory-access mode.
    pub fn memory(mut self, mode: MemoryMode) -> Self {
        self.memory = mode;
        self
    }

    /// Overrides the per-pipeline FIFO depth.
    pub fn fifo_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "FIFO depth must be positive");
        self.fifo_depth = Some(depth);
        self
    }

    /// Overrides the in-flight query cap.
    pub fn max_inflight(mut self, n: usize) -> Self {
        assert!(n > 0, "in-flight cap must be positive");
        self.max_inflight = Some(n);
        self
    }

    /// Overrides the static-mode batch size.
    pub fn batch_size(mut self, n: usize) -> Self {
        assert!(n > 0, "batch size must be positive");
        self.batch_size = Some(n);
        self
    }

    /// Sets the randomness seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The four Fig. 11 ablation configurations, in the figure's order:
    /// baseline, +scheduler, +async, full.
    pub fn ablation_grid(self) -> [AcceleratorConfig; 4] {
        [
            self.schedule(ScheduleMode::StaticBatched)
                .memory(MemoryMode::Blocking),
            self.schedule(ScheduleMode::ZeroBubble)
                .memory(MemoryMode::Blocking),
            self.schedule(ScheduleMode::StaticBatched)
                .memory(MemoryMode::Asynchronous),
            self.schedule(ScheduleMode::ZeroBubble)
                .memory(MemoryMode::Asynchronous),
        ]
    }

    /// Resolved pipeline count.
    pub fn effective_pipelines(&self) -> u32 {
        let n = self
            .pipeline_override
            .unwrap_or_else(|| self.platform.spec().pipelines());
        // Butterfly fabrics need powers of two; round down.
        if n.is_power_of_two() {
            n
        } else {
            n.next_power_of_two() / 2
        }
    }

    /// Resolved per-pipeline FIFO depth (Theorem VI.1 by default).
    pub fn effective_fifo_depth(&self) -> usize {
        self.fifo_depth
            .unwrap_or_else(|| ridgewalker_fifo_depth(self.effective_pipelines() as usize))
    }

    /// Resolved in-flight query cap.
    pub fn effective_max_inflight(&self) -> usize {
        self.max_inflight
            .unwrap_or(256 * self.effective_pipelines() as usize)
    }

    /// Overrides the incremental-backend poll quantum (simulated cycles
    /// per `poll`).
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    pub fn poll_quantum(mut self, cycles: u64) -> Self {
        assert!(cycles > 0, "poll quantum must be positive");
        self.poll_quantum = Some(cycles);
        self
    }

    /// Resolved incremental poll quantum.
    pub fn effective_poll_quantum(&self) -> u64 {
        self.poll_quantum
            .unwrap_or(512 * u64::from(self.effective_pipelines()))
    }

    /// Overrides the slot-table compaction threshold (completed slots
    /// held before the next quiescence point rebases the table).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn slot_compact_threshold(mut self, n: usize) -> Self {
        assert!(n > 0, "compaction threshold must be positive");
        self.slot_compact_threshold = Some(n);
        self
    }

    /// Resolved slot-table compaction threshold.
    pub fn effective_slot_compact_threshold(&self) -> usize {
        self.slot_compact_threshold.unwrap_or(4096)
    }

    /// Resolved static batch size.
    pub fn effective_batch_size(&self) -> usize {
        self.batch_size
            .unwrap_or(16 * self.effective_pipelines() as usize)
    }

    /// Outstanding-request budget per channel under the memory mode.
    pub fn effective_outstanding(&self) -> usize {
        match self.memory {
            MemoryMode::Asynchronous => self.platform.spec().max_outstanding,
            MemoryMode::Blocking => 8,
        }
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = AcceleratorConfig::new();
        assert_eq!(c.effective_pipelines(), 16); // 32 channels / 2
        assert_eq!(c.effective_fifo_depth(), 17); // 1 + 4·log2(16)
        assert_eq!(c.effective_outstanding(), 128);
    }

    #[test]
    fn blocking_mode_has_a_small_window() {
        let c = AcceleratorConfig::new().memory(MemoryMode::Blocking);
        assert_eq!(c.effective_outstanding(), 8);
        assert!(c.effective_outstanding() < AcceleratorConfig::new().effective_outstanding());
    }

    #[test]
    fn ablation_grid_covers_all_four_configs() {
        let grid = AcceleratorConfig::new().ablation_grid();
        let combos: Vec<(ScheduleMode, MemoryMode)> =
            grid.iter().map(|c| (c.schedule, c.memory)).collect();
        assert_eq!(combos.len(), 4);
        assert_eq!(
            combos[0],
            (ScheduleMode::StaticBatched, MemoryMode::Blocking)
        );
        assert_eq!(
            combos[3],
            (ScheduleMode::ZeroBubble, MemoryMode::Asynchronous)
        );
    }

    #[test]
    fn pipeline_override_wins() {
        let c = AcceleratorConfig::new().pipelines(4);
        assert_eq!(c.effective_pipelines(), 4);
        assert_eq!(c.effective_fifo_depth(), 9); // 1 + 4·log2(4)
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_pipelines_panic() {
        let _ = AcceleratorConfig::new().pipelines(6);
    }

    #[test]
    fn derived_sizes_scale_with_pipelines() {
        let c = AcceleratorConfig::new().pipelines(8);
        assert_eq!(c.effective_max_inflight(), 2048);
        assert_eq!(c.effective_batch_size(), 128);
    }
}
