//! Placement policies: how a tenant's next micro-batch picks its shard.
//!
//! Three built-ins ship, in increasing sophistication:
//!
//! * [`StaticHashPolicy`] — today's behaviour: every query goes to the
//!   vertex-hash home shard. Load-blind; the baseline the adaptive
//!   policies are benched against.
//! * [`LeastLoadedPolicy`] — join-shortest-queue, weighted by each
//!   shard's estimated service rate. Reacts instantly but rebinds the
//!   tenant on every submission, so under oscillating load tenants flap
//!   between shards.
//! * [`AdaptivePolicy`] — cost-based placement with hysteresis: a tenant
//!   stays where it is unless another shard is *enough* better
//!   (relative-improvement threshold) and the tenant has dwelt long
//!   enough on its current shard. Bounded migration under oscillating
//!   load is a property test in `tests/routing.rs`.

use crate::signals::FleetView;
use grw_service::TenantId;

/// A policy's verdict for one micro-batch of one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Route each query to its vertex-hash home among the *eligible*
    /// shards (identical to `WalkService::submit` when nothing is
    /// drained). No tenant binding is recorded.
    HashEach,
    /// Park the whole batch on this shard and bind the tenant there
    /// until the policy decides otherwise. Must be an eligible shard.
    Shard(usize),
}

/// Decides where each tenant's next micro-batch of queries executes.
///
/// The router calls [`place`](Self::place) once per `submit` — the
/// micro-batch boundary at which tenant migration is permitted. In-flight
/// queries are never moved: a placement only affects queries accepted
/// *after* it, which is what keeps walk conservation trivial under
/// migration (every query still reaches exactly one shard exactly once).
pub trait RoutePolicy {
    /// Stable policy name for reports and bench records.
    fn name(&self) -> &'static str;

    /// Whether this policy reads the fleet signals. When `false` the
    /// router skips the per-shard snapshot/telemetry sweep and hands
    /// [`place`](Self::place) a [`FleetView`] with an **empty** `shards`
    /// slice (eligibility and rates are still populated). Default `true`.
    fn wants_signals(&self) -> bool {
        true
    }

    /// Chooses a placement for `tenant`'s next `batch`.
    ///
    /// `current` is the tenant's live binding, already filtered for
    /// eligibility (`None` for a first-time tenant *or* one whose bound
    /// shard was drained — either way the policy is free to move it).
    /// Returning [`Placement::Shard`] on an ineligible shard is a
    /// contract violation and panics in the router.
    fn place(
        &mut self,
        tenant: TenantId,
        batch: &[grw_algo::WalkQuery],
        current: Option<usize>,
        fleet: &FleetView<'_>,
    ) -> Placement;
}

/// Boxed policies are policies, so callers can pick one at runtime.
impl RoutePolicy for Box<dyn RoutePolicy + Send> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn wants_signals(&self) -> bool {
        (**self).wants_signals()
    }

    fn place(
        &mut self,
        tenant: TenantId,
        batch: &[grw_algo::WalkQuery],
        current: Option<usize>,
        fleet: &FleetView<'_>,
    ) -> Placement {
        (**self).place(tenant, batch, current, fleet)
    }
}

/// Static vertex-hash placement — the load-blind baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticHashPolicy;

impl RoutePolicy for StaticHashPolicy {
    fn name(&self) -> &'static str {
        "static-hash"
    }

    fn wants_signals(&self) -> bool {
        false
    }

    fn place(
        &mut self,
        _tenant: TenantId,
        _batch: &[grw_algo::WalkQuery],
        _current: Option<usize>,
        _fleet: &FleetView<'_>,
    ) -> Placement {
        Placement::HashEach
    }
}

/// Join-shortest-queue, weighted by estimated service rate: the batch
/// goes wherever it would drain soonest right now. No hysteresis — the
/// tenant rebinds freely every submission.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoadedPolicy;

impl RoutePolicy for LeastLoadedPolicy {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn place(
        &mut self,
        _tenant: TenantId,
        batch: &[grw_algo::WalkQuery],
        _current: Option<usize>,
        fleet: &FleetView<'_>,
    ) -> Placement {
        let best = fleet
            .eligible_shards()
            .map(|s| (s.shard, fleet.drain_time(s, batch.len())))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("router guarantees at least one eligible shard");
        Placement::Shard(best.0)
    }
}

/// Tuning knobs of the [`AdaptivePolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Relative cost improvement another shard must offer before a bound
    /// tenant migrates (`0.3` = at least 30% cheaper). Higher values
    /// trade reaction speed for placement stability.
    pub hysteresis: f64,
    /// Minimum ticks a tenant dwells on its shard between voluntary
    /// migrations — the hard bound on flap rate (at most one migration
    /// per tenant per window, regardless of how wildly the load
    /// signal oscillates). Each tenant's effective window is staggered
    /// by a deterministic per-tenant offset in `[0, min_dwell_ticks/2]`,
    /// so a fleet-wide load swing releases tenants one at a time instead
    /// of stampeding them onto whichever shard momentarily looks empty.
    pub min_dwell_ticks: u64,
    /// Weight of the shard's realized-latency EWMA in the cost score,
    /// in ticks of cost per tick of EWMA. The backlog model predicts
    /// queueing delay; this term folds in what deliveries actually
    /// experienced (batching, pipeline effects the model misses).
    pub ewma_weight: f64,
    /// Cost multiplier per unit of pipeline bubble ratio: a shard
    /// wasting issue slots is charged extra, steering load toward
    /// well-pipelined shards at equal backlog.
    pub bubble_penalty: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            hysteresis: 0.3,
            min_dwell_ticks: 64,
            ewma_weight: 0.25,
            bubble_penalty: 0.5,
        }
    }
}

/// Cost-based placement with hysteresis: pick the cheapest shard by a
/// blended cost score, but move a *bound* tenant only when the win beats
/// the hysteresis threshold and the dwell clock has run out.
#[derive(Debug, Clone, Default)]
pub struct AdaptivePolicy {
    cfg: AdaptiveConfig,
    /// The binding last *observed* per tenant and the tick it was first
    /// seen — the dwell clock. Keyed off observations (the `current`
    /// argument) rather than our own decisions, so a migration the
    /// router could not execute (target shard refused the batch) does
    /// not consume the tenant's dwell window.
    observed: std::collections::HashMap<TenantId, (usize, u64)>,
}

impl AdaptivePolicy {
    /// A policy with the given knobs.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        Self {
            cfg,
            observed: std::collections::HashMap::new(),
        }
    }

    /// This tenant's effective dwell window: the configured minimum plus
    /// a deterministic per-tenant stagger of up to half the window
    /// (de-synchronizes migration waves across tenants).
    fn dwell_for(&self, tenant: TenantId) -> u64 {
        let jitter = self.cfg.min_dwell_ticks / 2;
        if jitter == 0 {
            return self.cfg.min_dwell_ticks;
        }
        self.cfg.min_dwell_ticks + grw_rng::SplitMix64::mix(u64::from(tenant.0)) % (jitter + 1)
    }

    /// The cost of placing `incoming` queries on shard `s` now: estimated
    /// queueing delay, a realized-latency drift term, and a pipeline-waste
    /// penalty.
    fn score(&self, fleet: &FleetView<'_>, s: &grw_service::ShardSnapshot, incoming: usize) -> f64 {
        let mut score = fleet.drain_time(s, incoming)
            + self.cfg.ewma_weight * s.ewma_latency_ticks.unwrap_or(0.0);
        if let Some(bubble) = s.bubble_ratio {
            score *= 1.0 + self.cfg.bubble_penalty * bubble;
        }
        score
    }
}

impl RoutePolicy for AdaptivePolicy {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn place(
        &mut self,
        tenant: TenantId,
        batch: &[grw_algo::WalkQuery],
        current: Option<usize>,
        fleet: &FleetView<'_>,
    ) -> Placement {
        let (best, best_score) = fleet
            .eligible_shards()
            .map(|s| (s.shard, self.score(fleet, s, batch.len())))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("router guarantees at least one eligible shard");
        let Some(cur) = current else {
            // Unbound (new tenant, or its shard was drained): free move.
            // The dwell clock starts when the executed binding is next
            // observed, so forget any stale observation.
            self.observed.remove(&tenant);
            return Placement::Shard(best);
        };
        // Advance the observation: a changed binding means the router
        // executed a move since our last look — the dwell clock restarts
        // at this first sighting.
        let since = match self.observed.get(&tenant) {
            Some(&(shard, since)) if shard == cur => since,
            _ => {
                self.observed.insert(tenant, (cur, fleet.now));
                fleet.now
            }
        };
        if best == cur {
            return Placement::Shard(cur);
        }
        let cur_score = self.score(fleet, &fleet.shards[cur], batch.len());
        let dwelt = fleet.now.saturating_sub(since);
        if best_score < cur_score * (1.0 - self.cfg.hysteresis) && dwelt >= self.dwell_for(tenant) {
            // Do not touch the clock here: if the router cannot place
            // the batch on `best`, the tenant has not moved and remains
            // free to retry immediately.
            Placement::Shard(best)
        } else {
            Placement::Shard(cur)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{tests::snap, ClassRates};
    use grw_algo::BackendClass;

    fn queries(n: usize) -> Vec<grw_algo::WalkQuery> {
        (0..n as u64)
            .map(|id| grw_algo::WalkQuery { id, start: 0 })
            .collect()
    }

    #[test]
    fn least_loaded_picks_the_fastest_draining_shard() {
        // Shard 0: accel, backlog 12 at 4 q/tick -> 3.25 ticks with the
        // batch. Shard 1: cpu, backlog 1 at 1 q/tick -> 2 ticks. JSQ by
        // *time*, not raw depth: the CPU shard wins here.
        let shards = vec![
            snap(0, BackendClass::Accelerator, 12),
            snap(1, BackendClass::Cpu, 1),
        ];
        let eligible = vec![true, true];
        let rates = ClassRates::none()
            .with(BackendClass::Accelerator, 4.0)
            .with(BackendClass::Cpu, 1.0);
        let view = FleetView {
            now: 0,
            shards: &shards,
            eligible: &eligible,
            rates: &rates,
        };
        let mut p = LeastLoadedPolicy;
        assert_eq!(
            p.place(grw_service::TenantId(0), &queries(1), None, &view),
            Placement::Shard(1)
        );
        // Pile 9 more onto the CPU shard and the accelerator wins again.
        let shards = vec![
            snap(0, BackendClass::Accelerator, 12),
            snap(1, BackendClass::Cpu, 10),
        ];
        let view = FleetView {
            shards: &shards,
            ..view
        };
        assert_eq!(
            p.place(grw_service::TenantId(0), &queries(1), None, &view),
            Placement::Shard(0)
        );
    }

    #[test]
    fn least_loaded_skips_drained_shards() {
        let shards = vec![
            snap(0, BackendClass::Accelerator, 0),
            snap(1, BackendClass::Cpu, 50),
        ];
        // The empty accelerator is drained: the loaded CPU shard must win.
        let eligible = vec![false, true];
        let rates = ClassRates::none();
        let view = FleetView {
            now: 0,
            shards: &shards,
            eligible: &eligible,
            rates: &rates,
        };
        assert_eq!(
            LeastLoadedPolicy.place(grw_service::TenantId(1), &queries(4), None, &view),
            Placement::Shard(1)
        );
    }

    #[test]
    fn adaptive_stays_put_inside_the_hysteresis_band() {
        let cfg = AdaptiveConfig {
            hysteresis: 0.5,
            min_dwell_ticks: 0,
            ewma_weight: 0.0,
            bubble_penalty: 0.0,
        };
        let mut p = AdaptivePolicy::new(cfg);
        let t = grw_service::TenantId(3);
        let rates = ClassRates::none()
            .with(BackendClass::Accelerator, 1.0)
            .with(BackendClass::Cpu, 1.0);
        let eligible = vec![true, true];
        // Bound to shard 0 with backlog 10; shard 1 at 7 is better but
        // not 50% better -> stay.
        let shards = vec![
            snap(0, BackendClass::Accelerator, 10),
            snap(1, BackendClass::Cpu, 7),
        ];
        let view = FleetView {
            now: 100,
            shards: &shards,
            eligible: &eligible,
            rates: &rates,
        };
        assert_eq!(p.place(t, &queries(1), Some(0), &view), Placement::Shard(0));
        // Shard 1 at backlog 2 is far past the threshold -> migrate.
        let shards = vec![
            snap(0, BackendClass::Accelerator, 10),
            snap(1, BackendClass::Cpu, 2),
        ];
        let view = FleetView {
            shards: &shards,
            ..view
        };
        assert_eq!(p.place(t, &queries(1), Some(0), &view), Placement::Shard(1));
    }

    #[test]
    fn adaptive_dwell_clock_blocks_early_migration() {
        let cfg = AdaptiveConfig {
            hysteresis: 0.1,
            min_dwell_ticks: 50,
            ewma_weight: 0.0,
            bubble_penalty: 0.0,
        };
        let mut p = AdaptivePolicy::new(cfg);
        let t = grw_service::TenantId(5);
        let rates = ClassRates::none().with(BackendClass::Cpu, 1.0);
        let eligible = vec![true, true];
        let loaded_vs_empty =
            |a: usize, b: usize| vec![snap(0, BackendClass::Cpu, a), snap(1, BackendClass::Cpu, b)];
        // First placement at tick 10 binds shard 1 and starts the clock.
        let shards = loaded_vs_empty(40, 0);
        let view = FleetView {
            now: 10,
            shards: &shards,
            eligible: &eligible,
            rates: &rates,
        };
        assert_eq!(p.place(t, &queries(1), None, &view), Placement::Shard(1));
        // At tick 30 shard 0 looks much better, but only 20 ticks dwelt.
        let shards = loaded_vs_empty(0, 40);
        let view = FleetView {
            now: 30,
            shards: &shards,
            ..view
        };
        assert_eq!(p.place(t, &queries(1), Some(1), &view), Placement::Shard(1));
        // At tick 120 even the staggered window (≤ 1.5 × min_dwell) has
        // passed.
        let view = FleetView {
            now: 120,
            shards: &shards,
            eligible: &eligible,
            rates: &rates,
        };
        assert_eq!(p.place(t, &queries(1), Some(1), &view), Placement::Shard(0));
    }

    #[test]
    fn adaptive_charges_bubbly_pipelines_extra() {
        let cfg = AdaptiveConfig {
            hysteresis: 0.0,
            min_dwell_ticks: 0,
            ewma_weight: 0.0,
            bubble_penalty: 2.0,
        };
        let p = AdaptivePolicy::new(cfg);
        let rates = ClassRates::none().with(BackendClass::Accelerator, 1.0);
        let eligible = vec![true];
        let mut clean = snap(0, BackendClass::Accelerator, 10);
        clean.bubble_ratio = Some(0.0);
        let mut bubbly = clean.clone();
        bubbly.bubble_ratio = Some(0.5);
        let shards = vec![clean.clone()];
        let view = FleetView {
            now: 0,
            shards: &shards,
            eligible: &eligible,
            rates: &rates,
        };
        let base = p.score(&view, &clean, 0);
        let penalized = p.score(&view, &bubbly, 0);
        assert!((penalized / base - 2.0).abs() < 1e-9, "2x at 50% bubbles");
    }
}
