//! The live signals a placement decision reads.
//!
//! A policy never talks to backends directly: the [`Router`] hands it a
//! [`FleetView`] — per-shard [`ShardSnapshot`]s (occupancy, latency EWMA,
//! pipeline bubbles), the eligibility mask (drained shards), and the
//! calibrated per-class saturation rates ([`ClassRates`]) that anchor the
//! cost model. Everything here is a cheap, point-in-time read; nothing
//! holds locks or borrows into the service across ticks.
//!
//! [`Router`]: crate::Router

use grw_algo::BackendClass;
use grw_service::ShardSnapshot;

/// Calibrated per-shard saturation rates μ̂ (queries per tick) by backend
/// class, for the workload the fleet is serving.
///
/// The numbers come from a closed-loop calibration run — `grw_bench`'s
/// load harness holds a single-shard service of each class at a fixed
/// backlog window and measures its sustained queries/tick. With no
/// calibration a policy falls back to the backend's static
/// [`cost_hint`](grw_algo::WalkBackend::cost_hint) prior.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassRates {
    entries: Vec<(BackendClass, f64)>,
}

impl ClassRates {
    /// No calibration: every rate falls back to the cost-hint prior.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder: records class `c`'s per-shard saturation rate.
    ///
    /// # Panics
    ///
    /// Panics if `per_shard_qpt` is not finite and positive.
    pub fn with(mut self, c: BackendClass, per_shard_qpt: f64) -> Self {
        self.set(c, per_shard_qpt);
        self
    }

    /// Records (or overwrites) class `c`'s per-shard saturation rate.
    ///
    /// # Panics
    ///
    /// Panics if `per_shard_qpt` is not finite and positive.
    pub fn set(&mut self, c: BackendClass, per_shard_qpt: f64) {
        assert!(
            per_shard_qpt.is_finite() && per_shard_qpt > 0.0,
            "saturation rate must be finite and positive, got {per_shard_qpt}"
        );
        if let Some(e) = self.entries.iter_mut().find(|(class, _)| *class == c) {
            e.1 = per_shard_qpt;
        } else {
            self.entries.push((c, per_shard_qpt));
        }
    }

    /// Class `c`'s calibrated per-shard rate, if one was recorded.
    pub fn get(&self, c: BackendClass) -> Option<f64> {
        self.entries
            .iter()
            .find(|(class, _)| *class == c)
            .map(|&(_, r)| r)
    }
}

/// Point-in-time view of the fleet a policy places against.
#[derive(Debug, Clone, Copy)]
pub struct FleetView<'a> {
    /// Current service tick.
    pub now: u64,
    /// One snapshot per shard, indexed by shard id.
    pub shards: &'a [ShardSnapshot],
    /// `eligible[shard]` is false while the shard is drained — policies
    /// must never place there.
    pub eligible: &'a [bool],
    /// Calibrated per-class saturation rates for the current workload.
    pub rates: &'a ClassRates,
}

/// The static prior on a shard's service rate implied by its backend's
/// [`cost_hint`](grw_algo::WalkBackend::cost_hint): queries/tick is the
/// reciprocal of the per-query cost. Cost hints fold in both parallelism
/// (pipelines, worker threads) and the prepared graph's sampler cost
/// factor, so a shard whose adaptive strategy table makes sampling
/// cheaper (e.g. a cached second-order Node2Vec kernel on a hub-heavy
/// graph) gets a proportionally higher prior rate before any calibration
/// or latency history exists.
pub fn cost_hint_rate(cost_hint: f64) -> f64 {
    1.0 / cost_hint.max(1e-9)
}

impl<'a> FleetView<'a> {
    /// Whether `shard` may receive new queries.
    pub fn is_eligible(&self, shard: usize) -> bool {
        self.eligible.get(shard).copied().unwrap_or(false)
    }

    /// Snapshots of the shards that may receive queries.
    pub fn eligible_shards(&self) -> impl Iterator<Item = &'a ShardSnapshot> + '_ {
        self.shards
            .iter()
            .filter(move |s| self.is_eligible(s.shard))
    }

    /// Estimated service rate of one shard in queries/tick: the
    /// calibrated class rate when available, else the static cost-hint
    /// prior (`1 / cost_hint`).
    pub fn service_rate(&self, s: &ShardSnapshot) -> f64 {
        self.rates
            .get(s.class)
            .unwrap_or_else(|| cost_hint_rate(s.cost_hint))
            .max(1e-9)
    }

    /// Estimated ticks for `s` to absorb its current backlog plus
    /// `incoming` additional queries — the first-order queueing-delay
    /// term of every load-aware policy here.
    pub fn drain_time(&self, s: &ShardSnapshot, incoming: usize) -> f64 {
        (s.backlog() + incoming) as f64 / self.service_rate(s)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn snap(shard: usize, class: BackendClass, backlog: usize) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            class,
            cost_hint: if class == BackendClass::Accelerator {
                0.25
            } else {
                1.0
            },
            queued: backlog,
            in_flight: 0,
            pending_commands: 0,
            awaiting_injection: None,
            executing: None,
            submitted: 0,
            completed: 0,
            ewma_latency_ticks: None,
            bubble_ratio: None,
            sampling: Default::default(),
        }
    }

    #[test]
    fn cheaper_sampling_raises_the_prior_rate() {
        // A 0.8 sampler cost factor (adaptive kernels on a skewed graph)
        // scales the shard's cost hint down and its prior rate up.
        let legacy = cost_hint_rate(1.0);
        let adaptive = cost_hint_rate(0.8);
        assert!(adaptive > legacy);
        assert!((adaptive - 1.25).abs() < 1e-12);
        // Degenerate hints never divide by zero.
        assert!(cost_hint_rate(0.0).is_finite());
    }

    #[test]
    fn rates_record_and_overwrite_per_class() {
        let mut r = ClassRates::none().with(BackendClass::Accelerator, 4.0);
        assert_eq!(r.get(BackendClass::Accelerator), Some(4.0));
        assert_eq!(r.get(BackendClass::Cpu), None);
        r.set(BackendClass::Accelerator, 8.0);
        r.set(BackendClass::Cpu, 1.0);
        assert_eq!(r.get(BackendClass::Accelerator), Some(8.0));
        assert_eq!(r.get(BackendClass::Cpu), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_rates_are_rejected() {
        let _ = ClassRates::none().with(BackendClass::Cpu, 0.0);
    }

    #[test]
    fn drain_time_prefers_calibration_over_the_prior() {
        let shards = vec![snap(0, BackendClass::Accelerator, 8)];
        let eligible = vec![true];
        // Calibrated at 2 q/tick: 8 backlogged + 2 incoming = 5 ticks.
        let rates = ClassRates::none().with(BackendClass::Accelerator, 2.0);
        let view = FleetView {
            now: 0,
            shards: &shards,
            eligible: &eligible,
            rates: &rates,
        };
        assert!((view.drain_time(&shards[0], 2) - 5.0).abs() < 1e-12);
        // Uncalibrated: the 0.25 cost hint implies 4 q/tick.
        let none = ClassRates::none();
        let view = FleetView {
            rates: &none,
            ..view
        };
        assert!((view.drain_time(&shards[0], 2) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn eligibility_masks_drained_shards() {
        let shards = vec![
            snap(0, BackendClass::Accelerator, 0),
            snap(1, BackendClass::Cpu, 0),
        ];
        let eligible = vec![true, false];
        let rates = ClassRates::none();
        let view = FleetView {
            now: 3,
            shards: &shards,
            eligible: &eligible,
            rates: &rates,
        };
        assert!(view.is_eligible(0));
        assert!(!view.is_eligible(1));
        assert!(!view.is_eligible(9), "out of range is never eligible");
        let names: Vec<usize> = view.eligible_shards().map(|s| s.shard).collect();
        assert_eq!(names, vec![0]);
    }
}
