//! Closed-loop fleet sizing: when to grow or shrink the shard fleet.
//!
//! The routing tier already reads every signal a scaler needs — per-shard
//! occupancy, realized-latency EWMAs, calibrated service rates — through
//! the same [`FleetView`] the placement policies consume. A
//! [`ScalePolicy`] closes the loop one level above placement: instead of
//! deciding *where* a tenant's next micro-batch runs, it decides *how
//! many shards should exist at all*, so capacity follows the observed
//! arrival process instead of being sized for peak.
//!
//! The shipped implementation, [`TargetSlo`], holds a latency SLO: it
//! scales **up** when the worst eligible shard's latency EWMA or
//! queueing estimate eats into the guard band below the target for long
//! enough (reacting only once delivered latency crosses the SLO itself
//! would be too late — the breach has already happened), and scales
//! **down** only when every signal has sat below the band floor *and*
//! the shrunken fleet is predicted to stay there: the policy tracks an
//! arrival-rate EWMA and requires both that the post-shrink occupancy
//! keeps a `band`-sized headroom and that an M/M/1-style extrapolation
//! of the current worst latency onto the smaller fleet's headroom still
//! fits under the floor. Each direction is further guarded by its own
//! sustain window plus a staggered cooldown (the same de-synchronization
//! trick the adaptive placement policy uses for tenant dwell), so an
//! oscillating load never makes the fleet flap.
//!
//! Mechanically, scaling runs through [`Router::scale_step`]: grow
//! appends a shard at a micro-batch boundary ([`Router::append_shard`]),
//! shrink reuses the drain path — the victim shard first turns
//! ineligible ([`Router::begin_retire`], no policy may place there from
//! that moment), then leaves the fleet once it has run dry
//! ([`Router::try_finish_retire`]), so walk conservation holds across
//! every scale event.
//!
//! [`Router`]: crate::Router
//! [`Router::scale_step`]: crate::Router::scale_step
//! [`Router::append_shard`]: crate::Router::append_shard
//! [`Router::begin_retire`]: crate::Router::begin_retire
//! [`Router::try_finish_retire`]: crate::Router::try_finish_retire

use crate::signals::FleetView;
use grw_obs::ScaleInputs;
use grw_rng::SplitMix64;

/// A scale policy's verdict for one control step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScaleDecision {
    /// The fleet is the right size (or a guard — sustain window,
    /// cooldown, size bound — says not yet).
    #[default]
    Hold,
    /// Add one shard.
    Up,
    /// Begin retiring one shard (drain first, remove when dry).
    Down,
}

/// One control observation with its evidence: the verdict plus every
/// intermediate the control law computed on the way there — the payload
/// of the `scale_decision` event the observability journal records, so
/// a trace explains not just *what* the scaler did but *why* (and why
/// it held back, via [`ScaleInputs::suppressed`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScaleObservation {
    /// The policy's verdict this step.
    pub decision: ScaleDecision,
    /// The control-law inputs behind it. Policies without introspection
    /// (the default [`observe`](ScalePolicy::observe)) leave this at its
    /// zero default.
    pub inputs: ScaleInputs,
}

/// Decides whether the fleet should grow, shrink, or hold, from the same
/// live [`FleetView`] the placement policies read. Called once per
/// control step (every service tick in the autoscale bench); all
/// hysteresis — sustain windows, cooldowns — lives inside the policy.
pub trait ScalePolicy {
    /// Stable policy name for reports and bench records.
    fn name(&self) -> &'static str;

    /// One control observation: read the fleet, update internal streaks,
    /// and return the verdict. A non-[`Hold`](ScaleDecision::Hold)
    /// verdict is a commitment — the policy must restart its own
    /// windows/cooldown as if the fleet changed, even if the router
    /// cannot execute the change this step (e.g. `Down` with a drain
    /// already in progress).
    fn decide(&mut self, fleet: &FleetView<'_>) -> ScaleDecision;

    /// [`decide`](Self::decide), but returning the control-law evidence
    /// alongside the verdict so the observability journal can record
    /// it. The default wraps `decide` with zeroed inputs; policies with
    /// real intermediates (like [`TargetSlo`]) override this and make
    /// `decide` delegate here — implement one of the two, never both
    /// independently.
    fn observe(&mut self, fleet: &FleetView<'_>) -> ScaleObservation {
        ScaleObservation {
            decision: self.decide(fleet),
            inputs: ScaleInputs::default(),
        }
    }
}

/// Tuning knobs of [`TargetSlo`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// The latency SLO in service ticks: the level the fleet should hold
    /// its worst per-shard latency EWMA (and queueing estimate) at.
    pub target_latency_ticks: f64,
    /// The guard margin below the target, as a fraction. Pressure means
    /// a signal above the floor `target × (1 − band)` — the policy reacts
    /// while the SLO still has headroom, because by the time delivered
    /// latency crosses the target itself the breach has already been
    /// served. Slack means every signal *and* the predicted post-shrink
    /// latency below that same floor, with the post-shrink occupancy
    /// keeping a `band`-sized headroom; the hysteresis dead zone is the
    /// gap between where the fleet sits after growing and where the
    /// shrink prediction lands, not a second threshold.
    pub band: f64,
    /// Consecutive pressured observations required before scaling up.
    /// Up is deliberately the faster direction — an SLO breach costs
    /// users, idle shards only cost fleet-ticks.
    pub breach_ticks: u64,
    /// Consecutive slack observations required before scaling down.
    pub slack_ticks: u64,
    /// Minimum ticks after any scale event before the next scale-*up* —
    /// deliberately short: while the fleet is climbing toward a demand
    /// step, every extra tick of cooldown is a tick of SLO breach, so
    /// consecutive ups may fire nearly back-to-back (the breach window
    /// re-arms between them regardless).
    pub up_cooldown_ticks: u64,
    /// Minimum ticks after any scale event before the next scale-*down*
    /// — the flap guard, much longer than the up side. Both cooldowns
    /// are staggered by a deterministic jitter in `[0, cooldown/2]`
    /// keyed off the event index, so the control loop never phase-locks
    /// with a periodic (diurnal, bursty) arrival process — the
    /// fleet-level twin of the adaptive placement policy's per-tenant
    /// dwell stagger.
    pub cooldown_ticks: u64,
    /// The fleet never shrinks below this many shards.
    pub min_shards: usize,
    /// The fleet never grows beyond this many shards.
    pub max_shards: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            target_latency_ticks: 16.0,
            band: 0.25,
            breach_ticks: 4,
            slack_ticks: 16,
            up_cooldown_ticks: 8,
            cooldown_ticks: 32,
            min_shards: 1,
            max_shards: 8,
        }
    }
}

impl SloConfig {
    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics if the target is not finite and positive, the band is not
    /// in `[0, 1)`, or the size bounds are empty/inverted.
    pub fn validate(&self) {
        assert!(
            self.target_latency_ticks.is_finite() && self.target_latency_ticks > 0.0,
            "SLO target must be finite and positive, got {}",
            self.target_latency_ticks
        );
        assert!(
            (0.0..1.0).contains(&self.band),
            "band must be in [0, 1), got {}",
            self.band
        );
        assert!(
            self.min_shards >= 1 && self.max_shards >= self.min_shards,
            "shard bounds must satisfy 1 <= min ({}) <= max ({})",
            self.min_shards,
            self.max_shards
        );
    }
}

/// The SLO-holding scale policy. See the [module docs](self) for the
/// control law; construct with [`new`](Self::new) and drive through
/// [`Router::scale_step`](crate::Router::scale_step).
#[derive(Debug, Clone)]
pub struct TargetSlo {
    cfg: SloConfig,
    /// Consecutive pressured observations (worst signal above the band).
    breach_streak: u64,
    /// Consecutive slack observations (all signals below the band and
    /// the shrunken fleet would still fit).
    slack_streak: u64,
    /// Tick of the last non-Hold verdict, for the cooldown.
    last_event_tick: Option<u64>,
    /// Scale events fired so far — also the cooldown-stagger key.
    events: u64,
    /// EWMA of fleet-wide arrivals per control step (queries/tick) —
    /// the demand estimate the shrink prediction is made against.
    /// Seeded with the first observed delta rather than zero, so the
    /// warm-up period never under-reads demand (which would let an
    /// early shrink through before the estimate converges).
    lambda_hat: Option<f64>,
    /// Total accepted queries across live shards at the previous
    /// observation, for the arrival delta.
    last_submitted: Option<u64>,
}

/// Smoothing weight of the arrival-rate EWMA: converges in ~16 control
/// steps, fast against any realistic demand envelope while still
/// flattening single-tick burst spikes.
const ARRIVAL_EWMA_ALPHA: f64 = 0.125;

impl TargetSlo {
    /// A policy holding the given SLO.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid — see [`SloConfig::validate`].
    pub fn new(cfg: SloConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            breach_streak: 0,
            slack_streak: 0,
            last_event_tick: None,
            events: 0,
            lambda_hat: None,
            last_submitted: None,
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Scale events fired so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The effective cooldown after the `events`-th event: the given
    /// minimum plus a deterministic stagger of up to half of it.
    fn staggered(&self, basis: u64) -> u64 {
        let jitter = basis / 2;
        if jitter == 0 {
            return basis;
        }
        basis + SplitMix64::mix(self.events) % (jitter + 1)
    }

    fn cooled_down(&self, now: u64, basis: u64) -> bool {
        match self.last_event_tick {
            None => true,
            Some(at) => now.saturating_sub(at) >= self.staggered(basis),
        }
    }

    fn fire(&mut self, now: u64) {
        self.breach_streak = 0;
        self.slack_streak = 0;
        self.last_event_tick = Some(now);
        self.events += 1;
    }
}

impl ScalePolicy for TargetSlo {
    fn name(&self) -> &'static str {
        "target-slo"
    }

    fn decide(&mut self, fleet: &FleetView<'_>) -> ScaleDecision {
        self.observe(fleet).decision
    }

    fn observe(&mut self, fleet: &FleetView<'_>) -> ScaleObservation {
        // Demand estimate: EWMA the per-step growth of the fleet-wide
        // accepted-query counter (over *all* live shards — a draining
        // shard's accepted work is still demand). The counter sum drops
        // for one step when a shard finishes retiring; the saturating
        // delta clamps that transient to zero and the EWMA re-converges.
        let total_submitted: u64 = fleet.shards.iter().map(|s| s.submitted).sum();
        if let Some(last) = self.last_submitted {
            let delta = total_submitted.saturating_sub(last) as f64;
            self.lambda_hat = Some(match self.lambda_hat {
                None => delta,
                Some(ewma) => ewma + ARRIVAL_EWMA_ALPHA * (delta - ewma),
            });
        }
        self.last_submitted = Some(total_submitted);
        let lambda_hat = self.lambda_hat.unwrap_or(0.0);

        let eligible: Vec<_> = fleet.eligible_shards().collect();
        let n = eligible.len();
        if n == 0 {
            return ScaleObservation::default();
        }
        // The band floor: the single watermark both directions are held
        // against. See [`SloConfig::band`] for why pressure triggers
        // below the target rather than above it.
        let floor = self.cfg.target_latency_ticks * (1.0 - self.cfg.band);
        // The two live signals the SLO is held against: what deliveries
        // actually experienced (per-shard latency EWMA) and what the
        // queueing model predicts for the current backlog. Either one
        // breaching counts as pressure — the EWMA catches batching and
        // pipeline effects the model misses, the backlog estimate reacts
        // a burst earlier than any delivered latency can. A shard's EWMA
        // only counts while it still holds work: once idle it is a
        // frozen record of the last burst, not live pressure, and
        // trusting it would keep a post-burst fleet scaled up forever.
        let worst_ewma = eligible
            .iter()
            .filter(|s| s.backlog() > 0)
            .filter_map(|s| s.ewma_latency_ticks)
            .fold(0.0_f64, f64::max);
        let worst_wait = eligible
            .iter()
            .map(|s| fleet.drain_time(s, 0))
            .fold(0.0_f64, f64::max);
        let pressured = worst_ewma > floor || worst_wait > floor;
        // Shrinking is gated on what the fleet *minus its retirement
        // candidate* (the highest-index eligible shard — retirement is
        // LIFO) would look like, not on how comfortable the current
        // fleet is. Backlog-only checks proved treacherous here: deep
        // pipelines keep instantaneous queues small even when demand is
        // near the smaller fleet's capacity, and latency explodes
        // nonlinearly with occupancy. Three predictions must all clear:
        //   1. the smaller fleet absorbs the current backlog under the
        //      floor (the burst-in-flight check),
        //   2. its occupancy against the arrival EWMA keeps a
        //      `band`-sized headroom (the saturation check),
        //   3. extrapolating the worst live latency by the headroom
        //      ratio — the M/M/1 shape `W ∝ 1/(μ − λ)` — stays under
        //      the floor (the nonlinearity check).
        let victim = eligible
            .iter()
            .map(|s| s.shard)
            .max()
            .expect("n > 0 checked above");
        let rate_total: f64 = eligible.iter().map(|s| fleet.service_rate(s)).sum();
        let rate_without: f64 = eligible
            .iter()
            .filter(|s| s.shard != victim)
            .map(|s| fleet.service_rate(s))
            .sum();
        let backlog: usize = eligible.iter().map(|s| s.backlog()).sum();
        let fits_smaller = n > 1 && backlog as f64 / rate_without.max(1e-9) < floor;
        let occupancy_fits = lambda_hat <= rate_without * (1.0 - self.cfg.band);
        let headroom_without = rate_without - lambda_hat;
        let predicted_shrunk = if headroom_without <= 0.0 {
            f64::INFINITY
        } else {
            let stretch = ((rate_total - lambda_hat) / headroom_without).max(1.0);
            worst_ewma.max(worst_wait) * stretch
        };
        let slack = worst_ewma < floor
            && worst_wait < floor
            && fits_smaller
            && occupancy_fits
            && predicted_shrunk < floor;

        self.breach_streak = if pressured { self.breach_streak + 1 } else { 0 };
        self.slack_streak = if slack { self.slack_streak + 1 } else { 0 };
        // Streaks as the verdict saw them — captured before `fire`
        // resets them, so the journal records the evidence, not the
        // post-commitment state.
        let (breach_streak, slack_streak) = (self.breach_streak, self.slack_streak);

        // Pressure and slack are mutually exclusive (both are strict
        // comparisons against the same floor), so at most one direction
        // wants to act; `suppressed` names the first guard that blocked
        // it, in evaluation order — sustain window, size bound, cooldown.
        let mut decision = ScaleDecision::Hold;
        let mut suppressed = None;
        if pressured {
            if self.breach_streak < self.cfg.breach_ticks {
                suppressed = Some("breach-streak");
            } else if n >= self.cfg.max_shards {
                suppressed = Some("at-max-shards");
            } else if !self.cooled_down(fleet.now, self.cfg.up_cooldown_ticks) {
                suppressed = Some("up-cooldown");
            } else {
                self.fire(fleet.now);
                decision = ScaleDecision::Up;
            }
        } else if slack {
            if self.slack_streak < self.cfg.slack_ticks {
                suppressed = Some("slack-streak");
            } else if n <= self.cfg.min_shards {
                suppressed = Some("at-min-shards");
            } else if !self.cooled_down(fleet.now, self.cfg.cooldown_ticks) {
                suppressed = Some("down-cooldown");
            } else {
                self.fire(fleet.now);
                decision = ScaleDecision::Down;
            }
        }

        ScaleObservation {
            decision,
            inputs: ScaleInputs {
                lambda_hat,
                floor,
                worst_ewma,
                worst_wait,
                pressured,
                fits_smaller,
                occupancy_fits,
                predicted_shrunk,
                breach_streak,
                slack_streak,
                shards: n as u32,
                suppressed,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{tests::snap, ClassRates};
    use grw_algo::BackendClass;
    use grw_service::ShardSnapshot;

    fn slo() -> SloConfig {
        SloConfig {
            target_latency_ticks: 10.0,
            band: 0.2,
            breach_ticks: 3,
            slack_ticks: 4,
            up_cooldown_ticks: 10,
            cooldown_ticks: 10,
            min_shards: 1,
            max_shards: 4,
        }
    }

    /// A one-CPU-class fleet at rate 1 q/tick/shard where every shard
    /// carries `backlog` queries.
    fn fleet(n: usize, backlog: usize) -> (Vec<ShardSnapshot>, Vec<bool>, ClassRates) {
        let shards = (0..n)
            .map(|i| snap(i, BackendClass::Cpu, backlog))
            .collect();
        (
            shards,
            vec![true; n],
            ClassRates::none().with(BackendClass::Cpu, 1.0),
        )
    }

    fn decide_at(
        p: &mut TargetSlo,
        now: u64,
        f: &(Vec<ShardSnapshot>, Vec<bool>, ClassRates),
    ) -> ScaleDecision {
        p.decide(&FleetView {
            now,
            shards: &f.0,
            eligible: &f.1,
            rates: &f.2,
        })
    }

    #[test]
    fn sustained_breach_scales_up_once_then_cools_down() {
        let mut p = TargetSlo::new(slo());
        // Backlog 40 at 1 q/tick: drain time 40 >> hi = 12.
        let f = fleet(2, 40);
        assert_eq!(decide_at(&mut p, 1, &f), ScaleDecision::Hold);
        assert_eq!(decide_at(&mut p, 2, &f), ScaleDecision::Hold);
        assert_eq!(
            decide_at(&mut p, 3, &f),
            ScaleDecision::Up,
            "3rd breach fires"
        );
        // Still breached, but the (staggered) cooldown blocks a re-fire.
        for now in 4..(3 + 10) {
            assert_eq!(decide_at(&mut p, now, &f), ScaleDecision::Hold);
        }
        assert_eq!(p.events(), 1);
    }

    #[test]
    fn slack_scales_down_only_when_the_smaller_fleet_fits() {
        let mut p = TargetSlo::new(slo());
        // Empty 3-shard fleet: pure slack — fires after slack_ticks.
        let f = fleet(3, 0);
        for now in 1..4 {
            assert_eq!(decide_at(&mut p, now, &f), ScaleDecision::Hold);
        }
        assert_eq!(decide_at(&mut p, 4, &f), ScaleDecision::Down);
        // Below-target latency but a backlog the 2-shard remainder could
        // not clear inside the band floor (backlog 7×3=21 over 2 shards =
        // 10.5 > lo = 8): never scales down.
        let mut p = TargetSlo::new(slo());
        let f = fleet(3, 7);
        for now in 1..40 {
            assert_eq!(decide_at(&mut p, now, &f), ScaleDecision::Hold);
        }
    }

    #[test]
    fn size_bounds_cap_both_directions() {
        let mut p = TargetSlo::new(slo());
        let f = fleet(4, 100); // at max_shards, heavily breached
        for now in 1..20 {
            assert_eq!(decide_at(&mut p, now, &f), ScaleDecision::Hold);
        }
        let mut p = TargetSlo::new(slo());
        let f = fleet(1, 0); // at min_shards, fully slack
        for now in 1..20 {
            assert_eq!(decide_at(&mut p, now, &f), ScaleDecision::Hold);
        }
    }

    #[test]
    fn interrupted_streaks_restart() {
        let mut p = TargetSlo::new(slo());
        let hot = fleet(2, 40);
        let cold = fleet(2, 0);
        assert_eq!(decide_at(&mut p, 1, &hot), ScaleDecision::Hold);
        assert_eq!(decide_at(&mut p, 2, &hot), ScaleDecision::Hold);
        // One calm observation resets the breach streak.
        assert_eq!(decide_at(&mut p, 3, &cold), ScaleDecision::Hold);
        assert_eq!(decide_at(&mut p, 4, &hot), ScaleDecision::Hold);
        assert_eq!(decide_at(&mut p, 5, &hot), ScaleDecision::Hold);
        assert_eq!(decide_at(&mut p, 6, &hot), ScaleDecision::Up);
    }

    #[test]
    fn cooldowns_are_staggered_deterministically() {
        let p = TargetSlo::new(slo());
        let c0 = p.staggered(10);
        assert!(
            (10..=15).contains(&c0),
            "cooldown staggers within [min, 1.5*min], got {c0}"
        );
        let mut later = TargetSlo::new(slo());
        later.events = 1;
        // Different event index, (almost surely) different stagger — and
        // always deterministic for a fixed index.
        assert_eq!(later.staggered(10), later.staggered(10));
        assert_eq!(later.staggered(0), 0, "zero basis never jitters");
    }

    #[test]
    #[should_panic(expected = "SLO target must be finite and positive")]
    fn invalid_targets_are_rejected() {
        let _ = TargetSlo::new(SloConfig {
            target_latency_ticks: 0.0,
            ..slo()
        });
    }

    #[test]
    fn ewma_breach_alone_is_pressure() {
        let mut p = TargetSlo::new(slo());
        // A tiny backlog (wait 1 << hi), but deliveries have been slow.
        let (mut shards, eligible, rates) = fleet(2, 1);
        for s in &mut shards {
            s.ewma_latency_ticks = Some(30.0);
        }
        let f = (shards, eligible, rates);
        assert_eq!(decide_at(&mut p, 1, &f), ScaleDecision::Hold);
        assert_eq!(decide_at(&mut p, 2, &f), ScaleDecision::Hold);
        assert_eq!(decide_at(&mut p, 3, &f), ScaleDecision::Up);
    }

    #[test]
    fn shrink_is_blocked_while_arrivals_would_saturate_the_smaller_fleet() {
        // Two shards at 1 q/tick each, zero backlog, zero latency — every
        // instantaneous signal reads slack. But one query keeps arriving
        // per tick: the surviving single shard would run at occupancy
        // 1.0, so the arrival-EWMA guard must refuse to shrink, forever.
        let mut p = TargetSlo::new(slo());
        let (mut shards, eligible, rates) = fleet(2, 0);
        for now in 1..200 {
            shards[0].submitted += 1;
            let f = (shards.clone(), eligible.clone(), rates.clone());
            assert_eq!(decide_at(&mut p, now, &f), ScaleDecision::Hold);
        }
        // Halve the arrival rate and the same fleet may shrink: one
        // shard at occupancy 0.5 keeps the band-sized headroom.
        let mut p = TargetSlo::new(slo());
        let mut fired = false;
        for now in 1..200 {
            shards[0].submitted += u64::from(now % 2 == 0);
            let f = (shards.clone(), eligible.clone(), rates.clone());
            if decide_at(&mut p, now, &f) == ScaleDecision::Down {
                fired = true;
                break;
            }
        }
        assert!(fired, "half-rate arrivals leave room for the smaller fleet");
    }

    #[test]
    fn idle_shards_do_not_count_stale_ewma_as_pressure() {
        let mut p = TargetSlo::new(slo());
        // Fully drained fleet whose last burst left a sky-high EWMA:
        // that is history, not pressure — the policy must read slack
        // and eventually scale down.
        let (mut shards, eligible, rates) = fleet(3, 0);
        for s in &mut shards {
            s.ewma_latency_ticks = Some(500.0);
        }
        let f = (shards, eligible, rates);
        for now in 1..4 {
            assert_eq!(decide_at(&mut p, now, &f), ScaleDecision::Hold);
        }
        assert_eq!(decide_at(&mut p, 4, &f), ScaleDecision::Down);
    }
}
