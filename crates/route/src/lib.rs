//! # grw_route — load-aware tenant placement over mixed shard fleets
//!
//! `grw_service` serves a sharded fleet, and since the `DynWalkBackend`
//! shard type landed, a fleet can *mix* accelerator shards (batch or
//! incremental cycle-level machines) with CPU shards behind one
//! `WalkService`. What was missing is the layer that decides **who runs
//! where**: static vertex-hash placement spreads load uniformly, which is
//! exactly wrong when the shards are heterogeneous — a slow CPU shard
//! gets the same share as a deep accelerator pipeline, and its queue sets
//! the fleet's tail latency.
//!
//! This crate is that layer. A [`Router`] wraps the service and consults
//! a [`RoutePolicy`] at every micro-batch boundary, handing it the live
//! fleet signals the serving tier already measures:
//!
//! * per-shard occupancy — coalescing-buffer depth, backend residency,
//!   and the incremental machine's awaiting/executing split
//!   ([`ShardSnapshot`]);
//! * per-shard realized latency (EWMA over delivered queries) and
//!   pipeline bubble ratios;
//! * calibrated per-class saturation rates μ̂ from the load harness
//!   ([`ClassRates`]).
//!
//! Three policies ship: [`StaticHashPolicy`] (today's behaviour, the
//! baseline), [`LeastLoadedPolicy`] (weighted join-shortest-queue), and
//! [`AdaptivePolicy`] (cost-based with hysteresis and a per-tenant dwell
//! clock, so tenants don't flap under oscillating load).
//!
//! **Migration and conservation.** Tenants migrate only at micro-batch
//! boundaries: a placement affects queries accepted *after* it, in-flight
//! work always completes on the shard that accepted it, and the service's
//! delivery path is untouched — so every walk still reaches exactly one
//! sink route exactly once, routed or not (property-tested over mixed
//! fleets in `tests/routing.rs`).
//!
//! **Draining.** [`Router::set_shard_eligible`] /
//! [`Router::drain_class`] take shards out of rotation administratively:
//! a drained shard finishes what it holds but never receives another
//! query, under every policy (static hash re-hashes over the eligible
//! subset).
//!
//! **Elastic scaling.** The fleet itself can change size while serving:
//! [`Router::append_shard`] grows it at a micro-batch boundary and
//! [`Router::begin_retire`] / [`Router::try_finish_retire`] shrink it
//! through the drain path, with [`Router::replan`] re-hashing tenant
//! placement over the changed shard set at each boundary. A
//! [`ScalePolicy`] — such as [`TargetSlo`], which holds a latency SLO
//! with hysteresis and staggered cooldowns — closes the loop through
//! [`Router::scale_step`]; see the [`scale`] module docs.
//!
//! # Example
//!
//! ```
//! use grw_algo::{ParallelBackend, PreparedGraph, QuerySet, WalkSpec};
//! use grw_graph::CsrGraph;
//! use grw_route::{AdaptivePolicy, Router};
//! use grw_service::{DynWalkBackend, ServiceConfig, TenantId, WalkService};
//! use std::sync::Arc;
//!
//! let g = CsrGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 0)], true);
//! let spec = WalkSpec::urw(6);
//! let prepared = Arc::new(PreparedGraph::new(g, &spec).unwrap());
//! let service = WalkService::new(ServiceConfig::new(2), |_| -> DynWalkBackend {
//!     Box::new(ParallelBackend::new(prepared.clone(), spec.clone(), 0xFEED, 2))
//! });
//! let mut router = Router::new(service, AdaptivePolicy::default());
//! let queries = QuerySet::random(8, 100, 1);
//! assert_eq!(router.submit(TenantId(7), queries.queries()), 100);
//! assert_eq!(router.drain().len(), 100);
//! println!("{}", router.report());
//! ```

mod policy;
pub mod scale;
mod signals;

pub use policy::{
    AdaptiveConfig, AdaptivePolicy, LeastLoadedPolicy, Placement, RoutePolicy, StaticHashPolicy,
};
pub use scale::{ScaleDecision, ScaleObservation, ScalePolicy, SloConfig, TargetSlo};
pub use signals::{cost_hint_rate, ClassRates, FleetView};

use grw_algo::{BackendClass, WalkQuery};
use grw_obs::{Counter, EventKind, Gauge, Labels, Obs, GLOBAL_SHARD};
use grw_rng::SplitMix64;
use grw_service::{
    CompletedWalk, Driver, DynWalkBackend, ServiceStats, ShardSnapshot, TenantId, WalkService,
    WalkSink,
};
use std::collections::HashMap;
use std::fmt;

/// What the routing tier did, as opposed to what the service underneath
/// measured ([`ServiceStats`]): where queries went and how often tenants
/// moved.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteReport {
    /// Name of the policy that produced this routing.
    pub policy: String,
    /// Tenant rebindings to a *different* shard (micro-batch-boundary
    /// migrations). Hash placement binds nothing and migrates nothing.
    pub migrations: u64,
    /// Queries accepted per shard, by shard index (live shards only).
    pub routed_per_shard: Vec<u64>,
    /// Queries that were routed to shards which have since retired —
    /// their per-shard counters fold in here when the fleet shrinks, so
    /// `routed_per_shard.sum() + routed_retired` still accounts for
    /// every accepted query across the fleet's whole lifetime.
    pub routed_retired: u64,
    /// Queries accepted per backend class, in [`BackendClass::all`] order
    /// (classes with no shards are omitted).
    pub routed_per_class: Vec<(BackendClass, u64)>,
    /// Tenants currently bound to a shard.
    pub bound_tenants: usize,
}

impl RouteReport {
    /// Queries routed to class `c` so far.
    pub fn routed_to(&self, c: BackendClass) -> u64 {
        self.routed_per_class
            .iter()
            .find(|(class, _)| *class == c)
            .map_or(0, |&(_, n)| n)
    }
}

impl fmt::Display for RouteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "routing[{}]: {} migrations, {} bound tenants |",
            self.policy, self.migrations, self.bound_tenants
        )?;
        for (class, n) in &self.routed_per_class {
            write!(f, " {class}: {n}")?;
        }
        write!(f, " | per shard {:?}", self.routed_per_shard)?;
        if self.routed_retired > 0 {
            write!(f, " (+{} on retired shards)", self.routed_retired)?;
        }
        Ok(())
    }
}

/// What one [`Router::scale_step`] control step did. At most one of the
/// action fields is `Some` per step, except that `retired` (completing
/// an *earlier* `Down`) can coincide with this step's own verdict.
#[derive(Debug, Default)]
pub struct ScaleStep {
    /// The policy's verdict this step.
    pub decision: ScaleDecision,
    /// Index of the shard appended by an `Up` verdict.
    pub appended: Option<usize>,
    /// Index of a draining tail shard that an `Up` verdict reactivated
    /// instead of appending a new one.
    pub reactivated: Option<usize>,
    /// Index of the tail shard a `Down` verdict began retiring.
    pub drain_begun: Option<usize>,
    /// Index of a previously-draining shard that ran dry and left the
    /// fleet this step.
    pub retired: Option<usize>,
    /// Straggler walks reclaimed from the retired shard's in-place
    /// drain (usually empty — the shard only retires once idle).
    pub reclaimed: Vec<CompletedWalk>,
}

/// The routing tier: a serving [`Driver`] over a (possibly
/// heterogeneous) fleet, fronted by a [`RoutePolicy`] that places every
/// tenant's micro-batches using live load signals.
///
/// The router is driver-generic: it wraps either execution regime — the
/// deterministic tick loop ([`WalkService`]) or the thread-per-shard
/// `ThreadedDriver` — behind the same placement logic, because
/// `submit_routed`, `shard_snapshots`, and the tick/drain lifecycle have
/// identical semantics in both ([`ShardSnapshot::pending_commands`]
/// additionally exposes the threaded regime's cross-thread backlog to
/// the policies' `backlog()` signal). Delivery passes straight through,
/// so everything the driver guarantees about conservation and
/// (multiset-)determinism holds verbatim.
pub struct Router<P: RoutePolicy> {
    driver: Driver<DynWalkBackend>,
    policy: P,
    rates: ClassRates,
    eligible: Vec<bool>,
    /// Tenant -> shard binding from the last `Placement::Shard` decision.
    bindings: HashMap<TenantId, usize>,
    /// Backend class per shard, captured at construction and refreshed
    /// by [`replan`](Self::replan) at every scale event.
    classes: Vec<BackendClass>,
    migrations: u64,
    routed_per_shard: Vec<u64>,
    /// Routed-query counters of shards that have since retired.
    routed_retired: u64,
    /// Observability hub (disabled until [`attach_obs`](Self::attach_obs)):
    /// the routing tier journals migrations, scale verdicts, and fleet
    /// membership changes into it, alongside the driver's own events.
    obs: Obs,
    /// Registry handles, resolved once at attach time (no-ops before).
    obs_migrations: Counter,
    obs_scale_ups: Counter,
    obs_scale_downs: Counter,
    obs_fleet_shards: Gauge,
}

impl<P: RoutePolicy> Router<P> {
    /// Wraps a serving driver with `policy` — pass a [`WalkService`], a
    /// `ThreadedDriver`, or a [`Driver`] (anything `Into<Driver>`). All
    /// shards start eligible and no calibration is loaded (policies fall
    /// back to cost-hint priors — see [`with_rates`](Self::with_rates)).
    pub fn new(driver: impl Into<Driver<DynWalkBackend>>, policy: P) -> Self {
        let driver = driver.into();
        let classes: Vec<BackendClass> = driver.shard_snapshots().iter().map(|s| s.class).collect();
        let shards = classes.len();
        Self {
            driver,
            policy,
            rates: ClassRates::none(),
            eligible: vec![true; shards],
            bindings: HashMap::new(),
            classes,
            migrations: 0,
            routed_per_shard: vec![0; shards],
            routed_retired: 0,
            obs: Obs::disabled(),
            obs_migrations: Counter::noop(),
            obs_scale_ups: Counter::noop(),
            obs_scale_downs: Counter::noop(),
            obs_fleet_shards: Gauge::noop(),
        }
    }

    /// Attaches an observability hub to the routing tier *and* the
    /// driver underneath: every shard records service events, and the
    /// router additionally journals tenant migrations (with from/to and
    /// moved-batch cost), every scale verdict carrying its control-law
    /// inputs, and fleet membership changes. Attach before submitting
    /// traffic so the trace covers the whole run.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.driver.attach_obs(obs.clone());
        let reg = obs.registry();
        self.obs_migrations = reg.counter("grw_migrations_total", Labels::none());
        self.obs_scale_ups = reg.counter("grw_scale_ups_total", Labels::none());
        self.obs_scale_downs = reg.counter("grw_scale_downs_total", Labels::none());
        self.obs_fleet_shards = reg.gauge("grw_fleet_shards", Labels::none());
        self.obs_fleet_shards.set(self.driver.shard_count() as i64);
        self.obs = obs;
    }

    /// Builds a live hub sized by the service config's
    /// `journal_capacity`, attaches it (routing tier and driver), and
    /// returns a handle.
    pub fn attach_fresh_obs(&mut self) -> Obs {
        let obs = Obs::with_capacity(self.driver.journal_capacity());
        self.attach_obs(obs.clone());
        obs
    }

    /// Forces an export barrier so every shard's buffered events reach
    /// the attached hub journal — see [`Driver::flush_obs`].
    pub fn flush_obs(&mut self) {
        self.driver.flush_obs();
    }

    /// Loads calibrated per-class saturation rates (builder form).
    pub fn with_rates(mut self, rates: ClassRates) -> Self {
        self.rates = rates;
        self
    }

    /// Marks one shard eligible or drained. A drained shard finishes its
    /// in-flight work but receives no further queries; tenants bound to
    /// it are re-placed at their next submission.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn set_shard_eligible(&mut self, shard: usize, eligible: bool) {
        assert!(shard < self.eligible.len(), "shard {shard} out of range");
        self.eligible[shard] = eligible;
    }

    /// Drains (or restores) every shard of a backend class; returns how
    /// many shards changed state.
    pub fn set_class_eligible(&mut self, class: BackendClass, eligible: bool) -> usize {
        let mut changed = 0;
        for (shard, &c) in self.classes.iter().enumerate() {
            if c == class && self.eligible[shard] != eligible {
                self.eligible[shard] = eligible;
                changed += 1;
            }
        }
        changed
    }

    /// Drains every shard of `class` — see
    /// [`set_class_eligible`](Self::set_class_eligible).
    pub fn drain_class(&mut self, class: BackendClass) -> usize {
        self.set_class_eligible(class, false)
    }

    /// The per-shard eligibility mask (false while a shard is drained
    /// or retiring).
    pub fn eligible(&self) -> &[bool] {
        &self.eligible
    }

    /// Re-plans placement over the current shard set — the migration
    /// boundary of every scale event. Refreshes the per-shard class
    /// table, resizes the eligibility mask and routing counters (new
    /// shards start eligible; counters of removed shards fold into the
    /// retired total), and drops tenant bindings that point at shards
    /// which no longer exist or are no longer eligible — those tenants
    /// re-place at their next submission, and each dropped binding
    /// counts as a migration. Returns the number of bindings dropped.
    ///
    /// [`append_shard`](Self::append_shard) and
    /// [`try_finish_retire`](Self::try_finish_retire) call this
    /// automatically; it is idempotent between scale events.
    pub fn replan(&mut self) -> usize {
        self.classes = self
            .driver
            .shard_snapshots()
            .iter()
            .map(|s| s.class)
            .collect();
        let shards = self.classes.len();
        if shards > self.eligible.len() {
            self.eligible.resize(shards, true);
            self.routed_per_shard.resize(shards, 0);
        } else if shards < self.eligible.len() {
            self.eligible.truncate(shards);
            self.routed_retired += self.routed_per_shard[shards..].iter().sum::<u64>();
            self.routed_per_shard.truncate(shards);
        }
        let eligible = self.eligible.clone();
        let mut dropped_bindings: Vec<(TenantId, usize)> = Vec::new();
        self.bindings.retain(|t, s| {
            let keep = *s < shards && eligible[*s];
            if !keep {
                dropped_bindings.push((*t, *s));
            }
            keep
        });
        let dropped = dropped_bindings.len();
        self.migrations += dropped as u64;
        self.obs_migrations.add(dropped as u64);
        self.obs_fleet_shards.set(shards as i64);
        if self.obs.is_enabled() && !dropped_bindings.is_empty() {
            // Binding drops surface in hash-map order; sort by tenant so
            // the journal stays deterministic for a fixed schedule.
            dropped_bindings.sort_by_key(|&(t, _)| t.0);
            let now = self.driver.now();
            for (t, s) in dropped_bindings {
                // An unbinding, not a rebinding: the tenant re-places at
                // its next submission, so `to` is the no-shard sentinel
                // and no batch moved with it.
                self.obs.record(
                    now,
                    GLOBAL_SHARD,
                    EventKind::Migration {
                        tenant: t.0,
                        from: s as u32,
                        to: GLOBAL_SHARD,
                        cost: 0.0,
                    },
                );
            }
        }
        dropped
    }

    /// Grows the live fleet by one shard at a micro-batch boundary and
    /// re-plans placement over it; returns the new shard's index (always
    /// the highest). The shard starts eligible and receives traffic from
    /// the very next [`submit`](Self::submit) — see
    /// [`Driver::append_shard`] for the seeding discipline that keeps
    /// new shards deterministic.
    pub fn append_shard(&mut self, backend: DynWalkBackend) -> usize {
        let shard = self.driver.append_shard(backend);
        if self.obs.is_enabled() {
            self.obs.record(
                self.driver.now(),
                shard as u32,
                EventKind::ShardAppended { reactivated: false },
            );
        }
        self.obs_scale_ups.inc();
        self.replan();
        shard
    }

    /// Starts retiring the highest-index shard: it turns ineligible
    /// immediately (no policy may place there from this moment) but
    /// keeps serving what it holds. Returns the retiring shard's index,
    /// or `None` if the tail shard is already retiring or it is the last
    /// eligible shard. Complete the retirement with
    /// [`try_finish_retire`](Self::try_finish_retire) once it runs dry.
    ///
    /// Retirement is LIFO by construction — both drivers only remove
    /// the tail shard, which is what keeps every surviving shard's index
    /// (and therefore bindings, counters, and snapshots) stable.
    pub fn begin_retire(&mut self) -> Option<usize> {
        let last = self.eligible.len().checked_sub(1)?;
        let live = self.eligible.iter().filter(|&&e| e).count();
        if !self.eligible[last] || live <= 1 {
            return None;
        }
        self.eligible[last] = false;
        if self.obs.is_enabled() {
            self.obs
                .record(self.driver.now(), last as u32, EventKind::RetireBegun);
        }
        Some(last)
    }

    /// Completes a retirement begun by [`begin_retire`](Self::begin_retire):
    /// once the draining tail shard holds no work, removes it from the
    /// fleet (the driver drains it in place, so any stragglers are
    /// conserved and returned here), and re-plans placement over the
    /// smaller fleet. Returns `None` while the shard is still busy, no
    /// retirement is in progress, or only one shard remains.
    pub fn try_finish_retire(&mut self) -> Option<(usize, Vec<CompletedWalk>)> {
        let last = self.eligible.len().checked_sub(1)?;
        if self.eligible[last] || self.eligible.len() <= 1 {
            return None;
        }
        if self.driver.shard_snapshots()[last].backlog() > 0 {
            return None;
        }
        let walks = self.driver.retire_shard();
        if self.obs.is_enabled() {
            self.obs.record(
                self.driver.now(),
                last as u32,
                EventKind::ShardRetired {
                    reclaimed: walks.len() as u32,
                },
            );
        }
        self.obs_scale_downs.inc();
        self.replan();
        Some((last, walks))
    }

    /// One closed-loop control step: finish any in-progress retirement
    /// whose shard has run dry, then consult `policy` on the live fleet
    /// and execute its verdict — `Up` appends a shard built by
    /// `make_backend(next_index)` (or, if the tail shard is still
    /// draining from an earlier `Down`, simply reactivates it — warm
    /// capacity beats a cold start), `Down` begins retiring the tail
    /// shard through the drain path. Call once per control interval
    /// (e.g. every service tick) from a serving loop.
    pub fn scale_step<S: ScalePolicy>(
        &mut self,
        policy: &mut S,
        make_backend: impl FnOnce(usize) -> DynWalkBackend,
    ) -> ScaleStep {
        let mut step = ScaleStep::default();
        if let Some((shard, walks)) = self.try_finish_retire() {
            step.retired = Some(shard);
            step.reclaimed = walks;
        }
        let snaps = self.driver.shard_snapshots();
        let view = FleetView {
            now: self.driver.now(),
            shards: &snaps,
            eligible: &self.eligible,
            rates: &self.rates,
        };
        let observed = policy.observe(&view);
        step.decision = observed.decision;
        // Journal the verdict with its evidence. A quiet Hold (no
        // pressure, no slack, nothing suppressed) journals nothing —
        // recording every idle control step would flood the bounded
        // ring; suppressed verdicts *are* recorded, with the guard that
        // blocked them, so a trace explains why the fleet held still.
        if self.obs.is_enabled()
            && (observed.decision != ScaleDecision::Hold || observed.inputs.suppressed.is_some())
        {
            let tag = match observed.decision {
                ScaleDecision::Hold => "hold",
                ScaleDecision::Up => "up",
                ScaleDecision::Down => "down",
            };
            self.obs.record(
                self.driver.now(),
                GLOBAL_SHARD,
                EventKind::ScaleDecision {
                    decision: tag,
                    inputs: Box::new(observed.inputs),
                },
            );
        }
        match step.decision {
            ScaleDecision::Hold => {}
            ScaleDecision::Up => {
                let last = self.eligible.len() - 1;
                if !self.eligible[last] {
                    self.eligible[last] = true;
                    if self.obs.is_enabled() {
                        self.obs.record(
                            self.driver.now(),
                            last as u32,
                            EventKind::ShardAppended { reactivated: true },
                        );
                    }
                    self.obs_scale_ups.inc();
                    step.reactivated = Some(last);
                } else {
                    let shard = self.append_shard(make_backend(self.eligible.len()));
                    step.appended = Some(shard);
                }
            }
            ScaleDecision::Down => {
                step.drain_begun = self.begin_retire();
            }
        }
        step
    }

    /// The tenant's current shard binding, if a placement recorded one.
    pub fn binding(&self, tenant: TenantId) -> Option<usize> {
        self.bindings.get(&tenant).copied()
    }

    /// Tenant migrations so far (rebindings to a different shard).
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Offers queries on behalf of `tenant`, placing them via the policy;
    /// accepts a prefix and returns its length, exactly like
    /// [`WalkService::submit`]. With every shard drained nothing is
    /// accepted (returns 0).
    pub fn submit(&mut self, tenant: TenantId, queries: &[WalkQuery]) -> usize {
        if queries.is_empty() || !self.eligible.iter().any(|&e| e) {
            return 0;
        }
        // Signals are only gathered for policies that read them — the
        // static-hash baseline skips the per-shard telemetry sweep.
        let snaps = if self.policy.wants_signals() {
            self.driver.shard_snapshots()
        } else {
            Vec::new()
        };
        let view = FleetView {
            now: self.driver.now(),
            shards: &snaps,
            eligible: &self.eligible,
            rates: &self.rates,
        };
        let current = self
            .bindings
            .get(&tenant)
            .copied()
            .filter(|&s| self.eligible[s]);
        match self.policy.place(tenant, queries, current, &view) {
            Placement::HashEach => self.submit_hashed(tenant, queries),
            Placement::Shard(shard) => {
                assert!(
                    self.eligible.get(shard) == Some(&true),
                    "policy '{}' placed {tenant} on drained/unknown shard {shard}",
                    self.policy.name()
                );
                let taken = self.driver.submit_routed(tenant, queries, shard);
                if taken == 0 {
                    // Nothing landed (shard buffer full): the tenant has
                    // not moved, so neither the binding nor the migration
                    // counter may say it did.
                    return 0;
                }
                let prev = self.bindings.insert(tenant, shard);
                if let Some(p) = prev.filter(|&p| p != shard) {
                    self.migrations += 1;
                    self.obs_migrations.inc();
                    if self.obs.is_enabled() {
                        // Cost of the move = the micro-batch that landed
                        // on the new shard at this boundary.
                        self.obs.record(
                            self.driver.now(),
                            GLOBAL_SHARD,
                            EventKind::Migration {
                                tenant: tenant.0,
                                from: p as u32,
                                to: shard as u32,
                                cost: taken as f64,
                            },
                        );
                    }
                }
                self.routed_per_shard[shard] += taken as u64;
                taken
            }
        }
    }

    /// Vertex-hash placement over the eligible subset: with nothing
    /// drained this reproduces [`WalkService::submit`]'s shard choice
    /// query for query.
    fn submit_hashed(&mut self, tenant: TenantId, queries: &[WalkQuery]) -> usize {
        let targets: Vec<usize> = (0..self.eligible.len())
            .filter(|&s| self.eligible[s])
            .collect();
        let all = targets.len() == self.eligible.len();
        // Destinations decided up front (borrow-free loop below). With
        // nothing drained this is exactly `WalkService::shard_of`.
        let homes: Vec<usize> = queries
            .iter()
            .map(|q| {
                if all {
                    self.driver.shard_of(q.start)
                } else {
                    targets[(SplitMix64::mix(u64::from(q.start)) % targets.len() as u64) as usize]
                }
            })
            .collect();
        let mut accepted = 0;
        let mut start = 0;
        while start < queries.len() {
            // Contiguous run with one destination -> one routed submit.
            let shard = homes[start];
            let mut end = start + 1;
            while end < queries.len() && homes[end] == shard {
                end += 1;
            }
            let taken = self
                .driver
                .submit_routed(tenant, &queries[start..end], shard);
            accepted += taken;
            self.routed_per_shard[shard] += taken as u64;
            if taken < end - start {
                break; // backpressure: preserve prefix-acceptance semantics
            }
            start = end;
        }
        accepted
    }

    /// Advances the fleet one tick — see [`Driver::tick`].
    pub fn tick(&mut self) -> Vec<CompletedWalk> {
        self.driver.tick()
    }

    /// [`WalkService::tick_into`]: one tick, delivered into `sink`.
    ///
    /// # Panics
    ///
    /// Panics under the threaded driver — explicit borrowed-sink
    /// delivery is a deterministic-regime API (the sink would have to
    /// cross threads every call); attach owned per-shard sinks with
    /// [`attach_sinks`](Self::attach_sinks) instead.
    pub fn tick_into<S: WalkSink + ?Sized>(&mut self, sink: &mut S) -> usize {
        self.deterministic_mut("tick_into").tick_into(sink)
    }

    /// Runs the fleet dry — see [`Driver::drain`].
    pub fn drain(&mut self) -> Vec<CompletedWalk> {
        self.driver.drain()
    }

    /// [`WalkService::drain_into`]: drains, delivered into `sink`.
    ///
    /// # Panics
    ///
    /// Panics under the threaded driver — see
    /// [`tick_into`](Self::tick_into).
    pub fn drain_into<S: WalkSink + ?Sized>(&mut self, sink: &mut S) -> usize {
        self.deterministic_mut("drain_into").drain_into(sink)
    }

    /// Routes completions into sinks from now on — see
    /// [`Driver::attach_sinks`] (one global sink under the deterministic
    /// regime, one owned sink per worker thread under the threaded one).
    pub fn attach_sinks(&mut self, make_sink: impl FnMut(usize) -> Box<dyn WalkSink + Send>) {
        self.driver.attach_sinks(make_sink);
    }

    /// Queries parked or in flight anywhere in the fleet.
    pub fn queue_depth(&self) -> usize {
        self.driver.queue_depth()
    }

    /// The current logical tick.
    pub fn now(&self) -> u64 {
        self.driver.now()
    }

    /// Service-level statistics (latency, throughput, per-tenant rows).
    pub fn stats(&self) -> ServiceStats {
        self.driver.stats()
    }

    /// Live per-shard signals (what the policy last saw, re-read).
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.driver.shard_snapshots()
    }

    /// Clean shutdown: drains the fleet (joining worker threads under
    /// the threaded driver) and returns the remaining walks plus final
    /// statistics — see [`Driver::finish`].
    pub fn finish(self) -> (Vec<CompletedWalk>, ServiceStats) {
        self.driver.finish()
    }

    /// What the routing tier did so far.
    pub fn report(&self) -> RouteReport {
        let mut routed_per_class = Vec::new();
        for class in BackendClass::all() {
            let n: u64 = self
                .classes
                .iter()
                .zip(&self.routed_per_shard)
                .filter(|(&c, _)| c == class)
                .map(|(_, &n)| n)
                .sum();
            if self.classes.contains(&class) {
                routed_per_class.push((class, n));
            }
        }
        RouteReport {
            policy: self.policy.name().to_string(),
            migrations: self.migrations,
            routed_per_shard: self.routed_per_shard.clone(),
            routed_retired: self.routed_retired,
            routed_per_class,
            bound_tenants: self.bindings.len(),
        }
    }

    /// Immutable access to the wrapped driver.
    pub fn driver(&self) -> &Driver<DynWalkBackend> {
        &self.driver
    }

    /// Mutable access to the wrapped driver. Submitting through this
    /// bypasses the policy — use [`submit`](Self::submit) for routed
    /// traffic.
    pub fn driver_mut(&mut self) -> &mut Driver<DynWalkBackend> {
        &mut self.driver
    }

    /// Unwraps the router, returning the driver.
    pub fn into_driver(self) -> Driver<DynWalkBackend> {
        self.driver
    }

    /// Immutable access to the wrapped deterministic service.
    ///
    /// # Panics
    ///
    /// Panics under the threaded driver — use [`driver`](Self::driver)
    /// for regime-generic access.
    pub fn service(&self) -> &WalkService<DynWalkBackend> {
        self.driver
            .as_deterministic()
            .expect("service() requires the deterministic driver; use driver()")
    }

    /// Mutable access to the wrapped deterministic service (sink
    /// subscription etc.). Submitting through this bypasses the policy —
    /// use [`submit`](Self::submit) for routed traffic.
    ///
    /// # Panics
    ///
    /// Panics under the threaded driver — use
    /// [`driver_mut`](Self::driver_mut).
    pub fn service_mut(&mut self) -> &mut WalkService<DynWalkBackend> {
        self.deterministic_mut("service_mut")
    }

    /// Unwraps the router, returning the deterministic service.
    ///
    /// # Panics
    ///
    /// Panics under the threaded driver — use
    /// [`into_driver`](Self::into_driver).
    pub fn into_service(self) -> WalkService<DynWalkBackend> {
        match self.driver {
            Driver::Deterministic(svc) => svc,
            Driver::Threaded(_) => {
                panic!("into_service() requires the deterministic driver; use into_driver()")
            }
        }
    }

    fn deterministic_mut(&mut self, what: &str) -> &mut WalkService<DynWalkBackend> {
        self.driver
            .as_deterministic_mut()
            .unwrap_or_else(|| panic!("{what}() requires the deterministic driver"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grw_algo::{ParallelBackend, PreparedGraph, QuerySet, WalkSpec};
    use grw_graph::generators::{Dataset, ScaleFactor};
    use grw_service::ServiceConfig;
    use std::sync::Arc;

    fn cpu_fleet(shards: usize, seed: u64) -> WalkService<DynWalkBackend> {
        let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
        let spec = WalkSpec::urw(8);
        let prepared = Arc::new(PreparedGraph::new(g, &spec).unwrap());
        WalkService::new(ServiceConfig::new(shards).max_batch(32), move |_| {
            Box::new(ParallelBackend::new(
                prepared.clone(),
                spec.clone(),
                seed,
                2,
            )) as DynWalkBackend
        })
    }

    #[test]
    fn hash_placement_matches_the_service_exactly() {
        let qs = QuerySet::random(2000, 600, 9);
        let mut direct = cpu_fleet(3, 0xAB);
        direct.submit(TenantId(1), qs.queries());
        let mut routed = Router::new(cpu_fleet(3, 0xAB), StaticHashPolicy);
        routed.submit(TenantId(1), qs.queries());
        assert_eq!(
            direct
                .shard_snapshots()
                .iter()
                .map(|s| s.submitted)
                .collect::<Vec<_>>(),
            routed
                .shard_snapshots()
                .iter()
                .map(|s| s.submitted)
                .collect::<Vec<_>>(),
            "hash routing reproduces WalkService::submit placement"
        );
        let mut a = direct.drain();
        let mut b = routed.drain();
        a.sort_by_key(|c| c.path.query);
        b.sort_by_key(|c| c.path.query);
        assert_eq!(a, b, "same shards, same seeds, same walks");
        assert_eq!(routed.report().migrations, 0);
        assert_eq!(routed.report().bound_tenants, 0);
    }

    #[test]
    fn shard_placement_binds_and_counts_migrations() {
        let mut r = Router::new(cpu_fleet(2, 1), LeastLoadedPolicy);
        let qs = QuerySet::random(100, 40, 2);
        // First batch binds; a second identical batch may stay or move
        // depending on load, but bindings are always recorded.
        assert_eq!(r.submit(TenantId(4), qs.queries()), 40);
        assert!(r.binding(TenantId(4)).is_some());
        let done = r.drain();
        assert_eq!(done.len(), 40);
        let report = r.report();
        assert_eq!(report.bound_tenants, 1);
        assert_eq!(report.routed_per_shard.iter().sum::<u64>(), 40);
        assert_eq!(report.routed_to(BackendClass::Cpu), 40);
        assert!(report.to_string().contains("least-loaded"));
    }

    #[test]
    fn fully_drained_fleet_accepts_nothing() {
        let mut r = Router::new(cpu_fleet(2, 1), LeastLoadedPolicy);
        assert_eq!(r.drain_class(BackendClass::Cpu), 2);
        let qs = QuerySet::random(100, 10, 3);
        assert_eq!(r.submit(TenantId(0), qs.queries()), 0);
        assert_eq!(r.queue_depth(), 0);
        // Restoring brings acceptance back.
        assert_eq!(r.set_class_eligible(BackendClass::Cpu, true), 2);
        assert_eq!(r.submit(TenantId(0), qs.queries()), 10);
        assert_eq!(r.drain().len(), 10);
    }

    #[test]
    fn drained_shard_never_receives_under_hash_placement() {
        let mut r = Router::new(cpu_fleet(3, 5), StaticHashPolicy);
        r.set_shard_eligible(1, false);
        let qs = QuerySet::random(2000, 500, 7);
        assert_eq!(r.submit(TenantId(2), qs.queries()), 500);
        let snaps = r.shard_snapshots();
        assert_eq!(snaps[1].submitted, 0, "drained shard got queries");
        assert!(snaps[0].submitted > 0 && snaps[2].submitted > 0);
        assert_eq!(r.drain().len(), 500);
    }

    /// A factory minting identically-seeded CPU shards over one shared
    /// prepared graph — the elastic-fleet tests grow fleets with it.
    fn cpu_backend_factory(seed: u64) -> impl Fn(usize) -> DynWalkBackend + Clone {
        let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
        let spec = WalkSpec::urw(8);
        let prepared = Arc::new(PreparedGraph::new(g, &spec).unwrap());
        move |_| {
            Box::new(ParallelBackend::new(
                prepared.clone(),
                spec.clone(),
                seed,
                2,
            )) as DynWalkBackend
        }
    }

    /// A rate-limited shard: completes at most `rate` (real) walks per
    /// poll. Software backends clear their whole queue every tick, which
    /// makes per-shard capacity infinite under the deterministic driver —
    /// this wrapper restores a finite service rate so queueing pressure
    /// (and therefore SLO-driven scaling) is observable in-process.
    struct TrickleBackend {
        inner: ParallelBackend<Arc<PreparedGraph>>,
        pending: std::collections::VecDeque<grw_algo::WalkQuery>,
        rate: usize,
    }

    impl grw_algo::WalkBackend for TrickleBackend {
        fn submit(&mut self, queries: &[WalkQuery]) -> usize {
            self.pending.extend(queries.iter().cloned());
            queries.len()
        }
        fn poll(&mut self) -> Vec<grw_algo::WalkPath> {
            for _ in 0..self.rate {
                match self.pending.pop_front() {
                    Some(q) => assert_eq!(self.inner.submit(&[q]), 1),
                    None => break,
                }
            }
            self.inner.drain()
        }
        fn drain(&mut self) -> Vec<grw_algo::WalkPath> {
            while let Some(q) = self.pending.pop_front() {
                assert_eq!(self.inner.submit(&[q]), 1);
            }
            self.inner.drain()
        }
        fn capacity_hint(&self) -> usize {
            usize::MAX
        }
        fn in_flight(&self) -> usize {
            self.pending.len() + self.inner.in_flight()
        }
        fn telemetry(&self) -> grw_algo::BackendTelemetry {
            self.inner.telemetry()
        }
    }

    fn trickle_backend_factory(seed: u64, rate: usize) -> impl Fn(usize) -> DynWalkBackend + Clone {
        let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
        let spec = WalkSpec::urw(8);
        let prepared = Arc::new(PreparedGraph::new(g, &spec).unwrap());
        move |_| {
            Box::new(TrickleBackend {
                inner: ParallelBackend::new(prepared.clone(), spec.clone(), seed, 2),
                pending: Default::default(),
                rate,
            }) as DynWalkBackend
        }
    }

    #[test]
    fn append_and_retire_replan_placement_and_conserve_walks() {
        let make = cpu_backend_factory(0xAB);
        let svc = WalkService::new(ServiceConfig::new(2).max_batch(32), &make);
        let mut r = Router::new(svc, StaticHashPolicy);
        let qs = QuerySet::random(2000, 300, 11);
        let mut done = Vec::new();
        assert_eq!(r.submit(TenantId(1), &qs.queries()[..150]), 150);
        done.extend(r.tick());

        // Grow: the appended shard is immediately part of the hash set.
        assert_eq!(r.append_shard(make(2)), 2);
        assert_eq!(r.eligible(), &[true, true, true]);
        assert_eq!(r.submit(TenantId(1), &qs.queries()[150..]), 150);
        assert!(
            r.shard_snapshots()[2].submitted > 0,
            "appended shard receives hashed traffic"
        );

        // Shrink: the tail shard turns ineligible at once...
        assert_eq!(r.begin_retire(), Some(2));
        assert_eq!(
            r.begin_retire(),
            None,
            "a retiring tail cannot retire twice"
        );
        let before = r.shard_snapshots()[2].submitted;
        assert_eq!(r.submit(TenantId(2), &qs.queries()[..100]), 100);
        assert_eq!(
            r.shard_snapshots()[2].submitted,
            before,
            "no new queries land on a retiring shard"
        );
        // ...but leaves the fleet only once it has run dry.
        let (retired, mut reclaimed) = loop {
            if let Some(res) = r.try_finish_retire() {
                break res;
            }
            done.extend(r.tick());
        };
        assert_eq!(retired, 2);
        done.append(&mut reclaimed);
        assert_eq!(r.eligible(), &[true, true]);

        done.extend(r.drain());
        assert_eq!(
            done.len(),
            400,
            "every accepted walk completes exactly once"
        );
        let report = r.report();
        assert_eq!(report.routed_per_shard.len(), 2);
        assert!(report.routed_retired > 0);
        assert_eq!(
            report.routed_per_shard.iter().sum::<u64>() + report.routed_retired,
            400,
            "lifetime routing counters survive the shrink"
        );
    }

    #[test]
    fn closed_loop_scaling_grows_under_pressure_and_shrinks_when_idle() {
        let make = trickle_backend_factory(0xAB, 4);
        let svc = WalkService::new(ServiceConfig::new(1).max_batch(8), &make);
        let mut r = Router::new(svc, StaticHashPolicy)
            .with_rates(ClassRates::none().with(BackendClass::Cpu, 4.0));
        let mut policy = TargetSlo::new(SloConfig {
            target_latency_ticks: 4.0,
            band: 0.25,
            breach_ticks: 2,
            slack_ticks: 3,
            up_cooldown_ticks: 2,
            cooldown_ticks: 4,
            min_shards: 1,
            max_shards: 3,
        });
        let qs = QuerySet::random(2000, 600, 13);
        let mut done = Vec::new();
        let mut offered = 0;
        for chunk in qs.queries().chunks(60) {
            offered += r.submit(TenantId(0), chunk);
            done.extend(r.tick());
            r.scale_step(&mut policy, |s| make(s));
        }
        assert!(
            r.eligible().len() > 1,
            "sustained SLO breach grew the fleet (events: {})",
            policy.events()
        );

        // Arrivals stop; slack must shrink the fleet back to one shard.
        for _ in 0..400 {
            done.extend(r.tick());
            r.scale_step(&mut policy, |s| make(s));
            if r.eligible() == [true] {
                break;
            }
        }
        assert_eq!(
            r.eligible(),
            &[true],
            "sustained slack shrank the fleet back to min_shards"
        );
        done.extend(r.drain());
        assert_eq!(
            done.len(),
            offered,
            "walks conserved across every scale event"
        );
    }

    #[test]
    #[should_panic(expected = "drained/unknown shard")]
    fn policies_may_not_place_on_drained_shards() {
        struct Stubborn;
        impl RoutePolicy for Stubborn {
            fn name(&self) -> &'static str {
                "stubborn"
            }
            fn place(
                &mut self,
                _: TenantId,
                _: &[WalkQuery],
                _: Option<usize>,
                _: &FleetView<'_>,
            ) -> Placement {
                Placement::Shard(0)
            }
        }
        let mut r = Router::new(cpu_fleet(2, 1), Stubborn);
        r.set_shard_eligible(0, false);
        let qs = QuerySet::random(100, 5, 1);
        let _ = r.submit(TenantId(0), qs.queries());
    }
}
