//! A drop-in subset of the `criterion` benchmarking API.
//!
//! The workspace vendors no external crates (the build environment has no
//! registry), but the Criterion benches under `crates/bench/benches/` are
//! worth keeping compilable and runnable — a bench that cannot build is a
//! bench that silently bit-rots. This shim implements exactly the API
//! surface those benches use (`criterion_group!`/`criterion_main!`,
//! benchmark groups, `Bencher::iter`, throughput annotations) with a
//! plain `Instant`-based timing loop: warm-up, then timed batches, then a
//! mean ns/iter line per benchmark. Rigorous statistics belong to real
//! criterion; this keeps the benches honest offline.

use std::fmt;
use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Work performed per iteration, used to annotate rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(500),
        }
    }
}

/// Times one closure; handed to `bench_function` callbacks.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    ns_per_iter: f64,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Runs `f` in a warm-up phase, then in timed batches, recording the
    /// mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        let mut iters: u64 = 0;
        while Instant::now() < warm_end {
            hint_black_box(f());
            iters += 1;
        }
        // Batch size aiming for ~20 batches in the measurement window.
        let batch = (iters / 20).max(1);
        let started = Instant::now();
        let mut total_iters = 0u64;
        while started.elapsed() < self.measurement {
            for _ in 0..batch {
                hint_black_box(f());
            }
            total_iters += batch;
        }
        self.ns_per_iter = started.elapsed().as_nanos() as f64 / total_iters.max(1) as f64;
    }
}

/// A named group of benchmarks sharing configuration.
///
/// Timing settings are scoped to the group, as in real criterion: a
/// `warm_up_time`/`measurement_time` override here never leaks into
/// later groups.
pub struct BenchmarkGroup<'a> {
    // Held only so the group borrow mirrors criterion's API shape
    // (exclusive access to the driver while a group is open).
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; the shim sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets this group's warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets this group's measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            warm_up: self.warm_up,
            measurement: self.measurement,
        };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.ns_per_iter > 0.0 => {
                format!(" ({:.1} Melem/s)", n as f64 * 1e3 / b.ns_per_iter)
            }
            Some(Throughput::Bytes(n)) if b.ns_per_iter > 0.0 => {
                format!(" ({:.1} MB/s)", n as f64 * 1e3 / b.ns_per_iter)
            }
            _ => String::new(),
        };
        println!("{}/{id}: {:.1} ns/iter{rate}", self.name, b.ns_per_iter);
        self
    }

    /// Ends the group (printing is immediate; nothing to flush).
    pub fn finish(self) {}
}

impl Criterion {
    /// Opens a named benchmark group with the driver's default timing.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        let warm_up = self.warm_up;
        let measurement = self.measurement;
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            warm_up,
            measurement,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn group_timing_overrides_do_not_leak_across_groups() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("a");
            g.warm_up_time(Duration::from_secs(30))
                .measurement_time(Duration::from_secs(30));
        }
        let g = c.benchmark_group("b");
        assert_eq!(g.warm_up, Duration::from_millis(200));
        assert_eq!(g.measurement, Duration::from_millis(500));
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(2),
        };
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(4))
            .sample_size(10)
            .bench_function("noop", |b| b.iter(|| 1u32));
        g.finish();
    }
}
