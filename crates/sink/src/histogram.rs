//! Fixed-memory distributions of streaming walks.

use grw_service::{CompletedWalk, SinkAck, SinkReport, WalkSink};
use std::fmt;

/// Number of log2 latency bins (covers every representable `u64` tick
/// count: bin `i` holds latencies in `[2^(i-1), 2^i)`, bin 0 holds 0).
const LATENCY_BINS: usize = 65;

/// Step-count and end-to-end-latency distributions in fixed-size bins —
/// the cheap per-consumer statistics a runtime-adaptive serving pipeline
/// (FlexiWalker-style) reads off the stream without retaining any path.
///
/// Steps are binned linearly up to `max_steps` with one overflow bin;
/// latency (arrival → delivery ticks) is binned logarithmically. Memory
/// is O(bins) forever; the sink never backpressures.
#[derive(Debug, Clone)]
pub struct HistogramSink {
    /// `steps[s]` = walks with exactly `s` hops, `s < max_steps`;
    /// `steps[max_steps]` = walks with more.
    steps: Vec<u64>,
    /// Log2-binned end-to-end latency in ticks.
    latency: [u64; LATENCY_BINS],
    walks: u64,
    total_steps: u64,
    flushes: u64,
}

impl HistogramSink {
    /// Creates a histogram with linear step bins `0..=max_steps`
    /// (`max_steps` doubles as the overflow bin).
    ///
    /// # Panics
    ///
    /// Panics if `max_steps == 0`.
    pub fn new(max_steps: usize) -> Self {
        assert!(max_steps > 0, "need at least one step bin");
        Self {
            steps: vec![0; max_steps + 1],
            latency: [0; LATENCY_BINS],
            walks: 0,
            total_steps: 0,
            flushes: 0,
        }
    }

    /// Walks recorded.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Walks with exactly `s` hops (`s == max_steps` is the overflow bin).
    pub fn step_count(&self, s: usize) -> u64 {
        self.steps.get(s).copied().unwrap_or(0)
    }

    /// The full linear step histogram.
    pub fn step_histogram(&self) -> &[u64] {
        &self.steps
    }

    /// Mean hops per walk.
    pub fn mean_steps(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.total_steps as f64 / self.walks as f64
        }
    }

    /// Walks whose end-to-end latency fell in log2 bin `i`
    /// (`[2^(i-1), 2^i)` ticks; bin 0 is exactly-zero latency).
    pub fn latency_bin(&self, i: usize) -> u64 {
        self.latency.get(i).copied().unwrap_or(0)
    }

    /// The log2 bin index for a latency.
    fn bin_of(latency_ticks: u64) -> usize {
        (u64::BITS - latency_ticks.leading_zeros()) as usize
    }
}

impl WalkSink for HistogramSink {
    fn accept(&mut self, walk: &CompletedWalk) -> SinkAck {
        let s = walk.path.steps() as usize;
        let bin = s.min(self.steps.len() - 1);
        self.steps[bin] += 1;
        self.latency[Self::bin_of(walk.latency_ticks())] += 1;
        self.walks += 1;
        self.total_steps += walk.path.steps();
        SinkAck::Accepted
    }

    fn flush(&mut self) {
        self.flushes += 1;
    }

    fn report(&self) -> SinkReport {
        SinkReport {
            accepted: self.walks,
            refused: 0,
            flushes: self.flushes,
            emitted: self.walks,
            buffered: self.steps.len() + LATENCY_BINS,
            peak_buffered: self.steps.len() + LATENCY_BINS,
        }
    }
}

impl fmt::Display for HistogramSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "histogram: {} walks, mean {:.2} steps",
            self.walks,
            self.mean_steps()
        )?;
        let peak = self.steps.iter().copied().max().unwrap_or(0).max(1);
        for (s, &n) in self.steps.iter().enumerate().filter(|&(_, &n)| n > 0) {
            let bar = "#".repeat((n * 40 / peak) as usize);
            writeln!(f, "  {s:>4} steps | {n:>8} {bar}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grw_algo::WalkPath;
    use grw_service::TenantId;

    fn walk(id: u64, hops: usize, latency: u64) -> CompletedWalk {
        CompletedWalk {
            tenant: TenantId(0),
            path: WalkPath::new(id, (0..=hops as u32).collect()),
            arrival_tick: 10,
            flushed_tick: 10,
            completed_tick: 10 + latency,
        }
    }

    #[test]
    fn steps_bin_linearly_with_overflow() {
        let mut h = HistogramSink::new(4);
        h.accept(&walk(0, 1, 0));
        h.accept(&walk(1, 1, 0));
        h.accept(&walk(2, 4, 0));
        h.accept(&walk(3, 9, 0));
        assert_eq!(h.step_count(1), 2);
        assert_eq!(
            h.step_count(4),
            2,
            "4 hops and 9 hops share the overflow bin"
        );
        assert_eq!(h.walks(), 4);
        assert!((h.mean_steps() - 15.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn latency_bins_are_log2() {
        let mut h = HistogramSink::new(4);
        h.accept(&walk(0, 1, 0)); // bin 0
        h.accept(&walk(1, 1, 1)); // bin 1
        h.accept(&walk(2, 1, 2)); // bin 2
        h.accept(&walk(3, 1, 3)); // bin 2
        h.accept(&walk(4, 1, 1000)); // bin 10
        assert_eq!(h.latency_bin(0), 1);
        assert_eq!(h.latency_bin(1), 1);
        assert_eq!(h.latency_bin(2), 2);
        assert_eq!(h.latency_bin(10), 1);
    }

    #[test]
    fn memory_is_fixed_and_display_renders() {
        let mut h = HistogramSink::new(8);
        for i in 0..10_000u64 {
            h.accept(&walk(i, (i % 12) as usize, i % 50));
        }
        assert_eq!(h.report().accepted, 10_000);
        assert_eq!(h.report().buffered, 9 + LATENCY_BINS, "O(bins) forever");
        let text = h.to_string();
        assert!(text.contains("10000 walks"), "{text}");
        assert!(text.contains("steps"), "{text}");
    }
}
