//! Metrics instrumentation for any sink.
//!
//! [`ObservedSink`] wraps a [`WalkSink`] and mirrors its delivery
//! activity into a [`MetricsRegistry`]: accepts, backpressure refusals,
//! flushes, and the walk steps that flowed through. The wrapper is
//! transparent — every call passes straight to the inner sink and the
//! ack is returned unchanged — so it composes with routers, corpus
//! windows, and aggregators alike, and a [`disabled`](
//! grw_obs::MetricsRegistry::disabled) registry turns the whole wrapper
//! into no-op handle calls.

use grw_obs::{Counter, Labels, MetricsRegistry};
use grw_service::{CompletedWalk, SinkAck, SinkReport, WalkSink};

/// A [`WalkSink`] whose delivery counters also land in a metrics
/// registry. `route` labels the stream (per-shard sinks under the
/// threaded driver pass their shard index; a single global sink passes
/// 0), so fan-out deployments keep their streams apart in the
/// exposition.
pub struct ObservedSink<S: WalkSink> {
    inner: S,
    accepted: Counter,
    refused: Counter,
    flushes: Counter,
    steps: Counter,
}

impl<S: WalkSink> ObservedSink<S> {
    /// Wraps `inner`, resolving this route's counters from `registry`.
    pub fn new(inner: S, registry: &MetricsRegistry, route: u32) -> Self {
        let labels = Labels::shard(route);
        Self {
            inner,
            accepted: registry.counter("grw_sink_accepted_total", labels),
            refused: registry.counter("grw_sink_refused_total", labels),
            flushes: registry.counter("grw_sink_flushes_total", labels),
            steps: registry.counter("grw_sink_steps_total", labels),
        }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: WalkSink> WalkSink for ObservedSink<S> {
    fn accept(&mut self, walk: &CompletedWalk) -> SinkAck {
        let ack = self.inner.accept(walk);
        match ack {
            SinkAck::Accepted => {
                self.accepted.inc();
                self.steps.add(walk.path.steps());
            }
            SinkAck::Backpressured => self.refused.inc(),
        }
        ack
    }

    fn flush(&mut self) {
        self.flushes.inc();
        self.inner.flush();
    }

    fn report(&self) -> SinkReport {
        self.inner.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollectingSink;
    use grw_algo::WalkPath;
    use grw_service::TenantId;

    fn walk(id: u64) -> CompletedWalk {
        CompletedWalk {
            tenant: TenantId(0),
            path: WalkPath::new(id, vec![0, 1, 2]),
            arrival_tick: 0,
            flushed_tick: 0,
            completed_tick: 1,
        }
    }

    #[test]
    fn counters_mirror_delivery_activity() {
        let reg = MetricsRegistry::new();
        let mut s = ObservedSink::new(CollectingSink::unbounded().capacity(2), &reg, 3);
        assert_eq!(s.accept(&walk(0)), SinkAck::Accepted);
        assert_eq!(s.accept(&walk(1)), SinkAck::Accepted);
        assert_eq!(s.accept(&walk(2)), SinkAck::Backpressured);
        s.flush();
        assert_eq!(s.accept(&walk(2)), SinkAck::Accepted);
        let labels = Labels::shard(3);
        assert_eq!(
            reg.counter_value("grw_sink_accepted_total", labels),
            Some(3)
        );
        assert_eq!(reg.counter_value("grw_sink_refused_total", labels), Some(1));
        assert_eq!(reg.counter_value("grw_sink_flushes_total", labels), Some(1));
        assert_eq!(reg.counter_value("grw_sink_steps_total", labels), Some(6));
        assert_eq!(s.report().accepted, 3, "report passes through");
        assert_eq!(s.into_inner().len(), 3);
    }

    #[test]
    fn disabled_registry_records_nothing_and_changes_nothing() {
        let reg = MetricsRegistry::disabled();
        let mut s = ObservedSink::new(CollectingSink::unbounded(), &reg, 0);
        for id in 0..10 {
            assert_eq!(s.accept(&walk(id)), SinkAck::Accepted);
        }
        assert_eq!(
            reg.counter_value("grw_sink_accepted_total", Labels::shard(0)),
            None
        );
        assert_eq!(s.inner().len(), 10);
    }
}
