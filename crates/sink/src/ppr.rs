//! Personalized-PageRank aggregation over streaming walk terminals.

use grw_service::{CompletedWalk, SinkAck, SinkReport, WalkSink};
use std::collections::HashMap;

/// Folds walk terminals into the Monte-Carlo PPR estimate, incrementally.
///
/// The estimator: the fraction of PPR walks from a source that terminate
/// at `v` converges to `PPR(v)`. This sink keeps one count per *distinct*
/// terminal vertex plus an exact top-k ranking maintained on every
/// accept, so memory is O(distinct terminals + k) — independent of how
/// many walks stream through — and the ranking is available at any point
/// of the run, not only after a batch dump.
///
/// The incremental top-k is exact because counts only ever increase: the
/// sole vertex whose rank can change on an accept is the one just
/// incremented, so comparing it against the current k-th count is a
/// complete update.
///
/// It never backpressures ([`flush`](WalkSink::flush) is a no-op): the
/// fold *is* the downstream.
#[derive(Debug, Clone)]
pub struct PprAggregator {
    k: usize,
    counts: HashMap<u32, u64>,
    /// Vertices with the k highest counts, descending (count, then vertex
    /// id ascending for determinism).
    top: Vec<u32>,
    walks: u64,
    flushes: u64,
}

impl PprAggregator {
    /// Creates an aggregator maintaining a top-`k` ranking.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k needs k > 0");
        Self {
            k,
            counts: HashMap::new(),
            top: Vec::new(),
            walks: 0,
            flushes: 0,
        }
    }

    /// Walks folded so far.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Distinct terminal vertices observed.
    pub fn distinct_terminals(&self) -> usize {
        self.counts.len()
    }

    /// Terminal-visit count of `v`.
    pub fn count(&self, v: u32) -> u64 {
        self.counts.get(&v).copied().unwrap_or(0)
    }

    /// The PPR estimate for `v`: terminal visits over walks folded.
    pub fn estimate(&self, v: u32) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.count(v) as f64 / self.walks as f64
        }
    }

    /// The dense estimate vector over vertices `0..n` (for L1 comparison
    /// against an exact solver).
    pub fn estimates(&self, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n];
        if self.walks == 0 {
            return out;
        }
        for (&v, &c) in &self.counts {
            if (v as usize) < n {
                out[v as usize] = c as f64 / self.walks as f64;
            }
        }
        out
    }

    /// The current top-k ranking as `(vertex, count, estimate)`,
    /// highest first. Ties break toward the smaller vertex id, so the
    /// ranking is deterministic for a fixed walk stream.
    pub fn top_k(&self) -> Vec<(u32, u64, f64)> {
        self.top
            .iter()
            .map(|&v| (v, self.count(v), self.estimate(v)))
            .collect()
    }

    /// Rank ordering: count descending, vertex id ascending.
    fn ranks_before(&self, a: u32, b: u32) -> bool {
        let (ca, cb) = (self.count(a), self.count(b));
        ca > cb || (ca == cb && a < b)
    }

    /// Restores the ranking after `v`'s count was incremented.
    fn reposition(&mut self, v: u32) {
        match self.top.iter().position(|&t| t == v) {
            Some(mut i) => {
                // Bubble the incremented vertex toward the front.
                while i > 0 && self.ranks_before(self.top[i], self.top[i - 1]) {
                    self.top.swap(i, i - 1);
                    i -= 1;
                }
            }
            None if self.top.len() < self.k => {
                self.top.push(v);
                self.reposition(v);
            }
            None => {
                let last = *self.top.last().expect("top is non-empty at capacity");
                if self.ranks_before(v, last) {
                    *self.top.last_mut().expect("checked") = v;
                    self.reposition(v);
                }
            }
        }
    }
}

impl WalkSink for PprAggregator {
    fn accept(&mut self, walk: &CompletedWalk) -> SinkAck {
        let terminal = walk.path.last();
        *self.counts.entry(terminal).or_insert(0) += 1;
        self.walks += 1;
        self.reposition(terminal);
        SinkAck::Accepted
    }

    fn flush(&mut self) {
        self.flushes += 1;
    }

    fn report(&self) -> SinkReport {
        SinkReport {
            accepted: self.walks,
            refused: 0,
            flushes: self.flushes,
            emitted: self.walks,
            buffered: self.counts.len() + self.top.len(),
            peak_buffered: self.counts.len() + self.top.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grw_algo::WalkPath;
    use grw_service::TenantId;

    fn walk_ending(id: u64, terminal: u32) -> CompletedWalk {
        CompletedWalk {
            tenant: TenantId(0),
            path: WalkPath::new(id, vec![0, terminal]),
            arrival_tick: 0,
            flushed_tick: 0,
            completed_tick: 1,
        }
    }

    #[test]
    fn estimates_are_terminal_fractions() {
        let mut agg = PprAggregator::new(3);
        for (i, t) in [5u32, 5, 5, 2, 2, 9].iter().enumerate() {
            agg.accept(&walk_ending(i as u64, *t));
        }
        assert_eq!(agg.walks(), 6);
        assert_eq!(agg.distinct_terminals(), 3);
        assert!((agg.estimate(5) - 0.5).abs() < 1e-12);
        assert!((agg.estimate(2) - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(agg.estimates(10)[9], 1.0 / 6.0);
        assert_eq!(agg.estimates(10)[0], 0.0);
    }

    #[test]
    fn incremental_top_k_matches_a_full_sort_at_every_step() {
        // Deterministic pseudo-random stream of terminals.
        let mut agg = PprAggregator::new(4);
        let mut state = 0x12345u64;
        let mut reference: HashMap<u32, u64> = HashMap::new();
        for i in 0..2000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = ((state >> 33) % 23) as u32;
            *reference.entry(t).or_insert(0) += 1;
            agg.accept(&walk_ending(i, t));

            // Full-sort ground truth under the same tie-break.
            let mut all: Vec<(u32, u64)> = reference.iter().map(|(&v, &c)| (v, c)).collect();
            all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let want: Vec<u32> = all.iter().take(4).map(|&(v, _)| v).collect();
            let got: Vec<u32> = agg.top_k().iter().map(|&(v, _, _)| v).collect();
            assert_eq!(got, want, "after {} walks", i + 1);
        }
    }

    #[test]
    fn top_k_is_bounded_and_never_backpressures() {
        let mut agg = PprAggregator::new(2);
        for i in 0..100u64 {
            assert_eq!(
                agg.accept(&walk_ending(i, (i % 7) as u32)),
                SinkAck::Accepted
            );
        }
        assert_eq!(agg.top_k().len(), 2);
        assert_eq!(agg.report().accepted, 100);
        assert!(agg.report().buffered <= 7 + 2);
    }
}
