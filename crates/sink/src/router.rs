//! Per-tenant fan-out: one delivery stream, many consumers.

use grw_service::{CompletedWalk, SinkAck, SinkReport, TenantId, WalkSink};
use std::collections::HashMap;

/// Dispatches each walk to the sink registered for its tenant, falling
/// back to a default route — so one `WalkService` subscription serves a
/// whole fleet of per-tenant consumers.
///
/// The router preserves the service's conservation guarantee: every
/// accepted walk reaches **exactly one** route (the tenant's sink if
/// registered, the default otherwise), and a route's backpressure is the
/// router's backpressure — the walk is not re-routed elsewhere, because
/// silently diverting tenant data would break per-tenant accounting.
/// `flush` fans out to every route.
pub struct SinkRouter {
    routes: HashMap<u16, Box<dyn WalkSink + Send>>,
    default: Box<dyn WalkSink + Send>,
    /// Walks delivered per tenant route (conservation accounting);
    /// the default route's tally is keyed by the tenant that used it.
    routed: HashMap<u16, u64>,
    via_default: u64,
    /// Final reports of removed/replaced routes, folded in so the
    /// aggregate [`report`](WalkSink::report) keeps covering every walk
    /// the router ever delivered (no phantom loss after a route retires).
    retired: SinkReport,
}

impl SinkRouter {
    /// Creates a router whose unregistered tenants fall through to
    /// `default`.
    pub fn new(default: Box<dyn WalkSink + Send>) -> Self {
        Self {
            routes: HashMap::new(),
            default,
            routed: HashMap::new(),
            via_default: 0,
            retired: SinkReport::default(),
        }
    }

    /// Registers `sink` as tenant `tenant`'s route (builder style).
    /// Re-registering a tenant replaces (and drops) its previous sink.
    pub fn route(mut self, tenant: TenantId, sink: Box<dyn WalkSink + Send>) -> Self {
        self.add_route(tenant, sink);
        self
    }

    /// Registers `sink` as tenant `tenant`'s route.
    pub fn add_route(&mut self, tenant: TenantId, sink: Box<dyn WalkSink + Send>) {
        if let Some(old) = self.routes.insert(tenant.0, sink) {
            let mut last = old.report();
            // A dropped sink holds nothing anymore; only its history
            // stays in the aggregate.
            last.buffered = 0;
            self.retired.merge(&last);
        }
    }

    /// The sink registered for `tenant`, if any.
    pub fn sink_for(&self, tenant: TenantId) -> Option<&(dyn WalkSink + Send)> {
        self.routes.get(&tenant.0).map(|s| &**s)
    }

    /// The default route.
    pub fn default_sink(&self) -> &(dyn WalkSink + Send) {
        &*self.default
    }

    /// Walks delivered on `tenant`'s behalf (via its own route or the
    /// default).
    pub fn delivered_for(&self, tenant: TenantId) -> u64 {
        self.routed.get(&tenant.0).copied().unwrap_or(0)
    }

    /// Walks that fell through to the default route.
    pub fn delivered_via_default(&self) -> u64 {
        self.via_default
    }

    /// Removes and returns `tenant`'s sink (subsequent walks fall through
    /// to the default route). Its counters stay folded into the router's
    /// aggregate report, so retiring a route never looks like walk loss.
    pub fn remove_route(&mut self, tenant: TenantId) -> Option<Box<dyn WalkSink + Send>> {
        let sink = self.routes.remove(&tenant.0)?;
        let mut last = sink.report();
        // The sink leaves with its buffer; only its history stays here.
        last.buffered = 0;
        self.retired.merge(&last);
        Some(sink)
    }
}

impl WalkSink for SinkRouter {
    fn accept(&mut self, walk: &CompletedWalk) -> SinkAck {
        let tenant = walk.tenant.0;
        let (ack, via_default) = match self.routes.get_mut(&tenant) {
            Some(sink) => (sink.accept(walk), false),
            None => (self.default.accept(walk), true),
        };
        if ack == SinkAck::Accepted {
            *self.routed.entry(tenant).or_insert(0) += 1;
            if via_default {
                self.via_default += 1;
            }
        }
        ack
    }

    fn flush(&mut self) {
        for sink in self.routes.values_mut() {
            sink.flush();
        }
        self.default.flush();
    }

    fn report(&self) -> SinkReport {
        let mut merged = self.default.report();
        merged.merge(&self.retired);
        for sink in self.routes.values() {
            merged.merge(&sink.report());
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectingSink, CountingSink};
    use grw_algo::WalkPath;

    fn walk(tenant: u16, id: u64) -> CompletedWalk {
        CompletedWalk {
            tenant: TenantId(tenant),
            path: WalkPath::new(id, vec![0, 1]),
            arrival_tick: 0,
            flushed_tick: 0,
            completed_tick: 1,
        }
    }

    #[test]
    fn walks_reach_exactly_one_route() {
        let mut router = SinkRouter::new(Box::new(CountingSink::new()))
            .route(TenantId(1), Box::new(CollectingSink::unbounded()))
            .route(TenantId(2), Box::new(CollectingSink::unbounded()));
        for (t, id) in [(1u16, 0u64), (1, 1), (2, 2), (9, 3), (1, 4)] {
            assert_eq!(router.accept(&walk(t, id)), SinkAck::Accepted);
        }
        assert_eq!(router.delivered_for(TenantId(1)), 3);
        assert_eq!(router.delivered_for(TenantId(2)), 1);
        assert_eq!(router.delivered_for(TenantId(9)), 1);
        assert_eq!(router.delivered_via_default(), 1);
        assert_eq!(router.report().accepted, 5, "routes partition the stream");
        assert_eq!(
            router.sink_for(TenantId(1)).unwrap().report().accepted,
            3,
            "tenant 1's sink saw only tenant 1's walks"
        );
        assert!(router.sink_for(TenantId(9)).is_none());
        assert_eq!(router.default_sink().report().accepted, 1);
    }

    #[test]
    fn route_backpressure_is_router_backpressure() {
        let mut router = SinkRouter::new(Box::new(CountingSink::new())).route(TenantId(1), {
            let mut s = CollectingSink::unbounded();
            s = s.capacity(1);
            Box::new(s)
        });
        assert_eq!(router.accept(&walk(1, 0)), SinkAck::Accepted);
        assert_eq!(
            router.accept(&walk(1, 1)),
            SinkAck::Backpressured,
            "full route refuses — the walk is not diverted to the default"
        );
        assert_eq!(router.delivered_via_default(), 0);
        // Fan-out flush frees the route.
        router.flush();
        assert_eq!(router.accept(&walk(1, 1)), SinkAck::Accepted);
        assert_eq!(router.delivered_for(TenantId(1)), 2);
    }

    #[test]
    fn removing_a_route_falls_back_to_default() {
        let mut router = SinkRouter::new(Box::new(CountingSink::new()))
            .route(TenantId(3), Box::new(CountingSink::new()));
        router.accept(&walk(3, 0));
        let removed = router.remove_route(TenantId(3)).expect("was registered");
        assert_eq!(removed.report().accepted, 1);
        router.accept(&walk(3, 1));
        assert_eq!(router.delivered_via_default(), 1);
        // The retired route's history stays in the aggregate: no phantom
        // walk loss after removal.
        assert_eq!(router.report().accepted, 2);
    }
}
