//! # grw_sink — bounded streaming consumers for completed walks
//!
//! The serving tier used to end at the accelerator edge: `WalkService`
//! handed growing `Vec<CompletedWalk>`s back to the caller, so every path
//! a sustained deployment produced stayed resident until someone disposed
//! of it. This crate is the consumer layer that closes the loop: concrete
//! [`WalkSink`] implementations that fold each walk into what downstream
//! applications actually want — with **bounded** internal buffering, so
//! the resident completed-path count is O(buffer capacity) regardless of
//! how many walks the run produces.
//!
//! Built-in sinks (the ThunderRW-style application mix):
//!
//! * [`CorpusSink`] — windows each path into skip-gram `(center, context)`
//!   training pairs (DeepWalk / Node2Vec corpora) inside a bounded pair
//!   buffer; full buffers push back, and `flush` emits the window to the
//!   downstream consumer.
//! * [`PprAggregator`] — folds terminal visits into per-vertex counts and
//!   an exact, incrementally maintained top-k ranking (the personalized
//!   recommendation query), memory O(distinct terminals), not O(walks).
//! * [`HistogramSink`] — step-count and end-to-end-latency distributions
//!   in fixed-size bins (the per-consumer statistics a runtime-adaptive
//!   pipeline reads), memory O(bins).
//! * [`SinkRouter`] — per-tenant fan-out: each walk is dispatched to the
//!   sink registered for its tenant (or the default route), preserving
//!   the service's conservation guarantee end to end.
//! * [`ObservedSink`] — a transparent wrapper mirroring any sink's
//!   accepts, refusals, and flushes into a `grw_obs` metrics registry,
//!   so sink-side delivery shows up in the unified exposition.
//! * [`CollectingSink`] / [`CountingSink`] — the degenerate ends of the
//!   spectrum, for tests and for measuring the bounded-memory claim
//!   against the legacy drain-to-`Vec` behaviour.
//!
//! The [`WalkSink`] trait itself lives in `grw_service` (next to
//! [`CompletedWalk`], which it consumes) and is re-exported here; this
//! crate is the home of the sink *subsystem*.
//!
//! # Example
//!
//! ```
//! use grw_algo::{ParallelBackend, PreparedGraph, QuerySet, WalkSpec};
//! use grw_graph::CsrGraph;
//! use grw_service::{ServiceConfig, TenantId, WalkService};
//! use grw_sink::{CorpusSink, WalkSink};
//! use std::sync::Arc;
//!
//! let g = CsrGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 0)], true);
//! let spec = WalkSpec::urw(6);
//! let prepared = Arc::new(PreparedGraph::new(g, &spec).unwrap());
//! let mut service = WalkService::new(ServiceConfig::new(2), |shard| {
//!     ParallelBackend::new(prepared.clone(), spec.clone(), 0xFEED ^ shard as u64, 2)
//! });
//!
//! let mut pairs = 0u64;
//! let mut corpus = CorpusSink::new(2, 256, |window: &[grw_sink::SkipGramPair]| {
//!     pairs += window.len() as u64;
//! });
//! let queries = QuerySet::random(8, 100, 1);
//! service.submit(TenantId(7), queries.queries());
//! let delivered = service.drain_into(&mut corpus);
//! assert_eq!(delivered, 100);
//! let report = corpus.report();
//! assert_eq!(report.accepted, 100);
//! drop(corpus);
//! assert!(pairs > 0);
//! ```

mod collect;
mod corpus;
mod histogram;
mod observe;
mod ppr;
mod router;

pub use collect::{CollectingSink, CountingSink};
pub use corpus::{CorpusSink, SkipGramPair};
pub use grw_service::{CompletedWalk, SinkAck, SinkReport, WalkSink};
pub use histogram::HistogramSink;
pub use observe::ObservedSink;
pub use ppr::PprAggregator;
pub use router::SinkRouter;
