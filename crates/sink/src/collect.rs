//! The degenerate sinks: full retention and zero retention.
//!
//! [`CollectingSink`] reproduces the legacy drain-to-`Vec` behaviour
//! behind the sink interface — memory grows linearly with walks, which is
//! exactly what the conservation property test needs (compare multisets)
//! and what the memory bench measures the bounded sinks *against*.
//! [`CountingSink`] is the opposite pole: O(1) memory, counters only.

use grw_service::{CompletedWalk, SinkAck, SinkReport, WalkSink};

/// Retains every accepted walk (optionally refusing while a bounded
/// window is full, to exercise the service's backpressure path).
///
/// With a `capacity`, `accept` refuses once the *window* (walks since the
/// last flush) reaches it, and `flush` seals the window into the retained
/// tail — retention is still unbounded, only the inter-flush window is
/// bounded. Without one, every walk is accepted immediately.
#[derive(Debug, Default)]
pub struct CollectingSink {
    window: Vec<CompletedWalk>,
    sealed: Vec<CompletedWalk>,
    capacity: Option<usize>,
    refused: u64,
    flushes: u64,
    peak_window: usize,
}

impl CollectingSink {
    /// A sink that accepts everything, immediately.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Bounds the inter-flush window at `n` walks (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn capacity(mut self, n: usize) -> Self {
        assert!(n > 0, "window capacity must be positive");
        self.capacity = Some(n);
        self
    }

    /// Every walk accepted so far, in delivery order.
    pub fn walks(&self) -> Vec<&CompletedWalk> {
        self.sealed.iter().chain(self.window.iter()).collect()
    }

    /// Consumes the sink and returns every accepted walk, in delivery
    /// order.
    pub fn into_walks(mut self) -> Vec<CompletedWalk> {
        self.sealed.append(&mut self.window);
        self.sealed
    }

    /// Walks accepted so far.
    pub fn len(&self) -> usize {
        self.sealed.len() + self.window.len()
    }

    /// Whether no walk has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl WalkSink for CollectingSink {
    fn accept(&mut self, walk: &CompletedWalk) -> SinkAck {
        if let Some(cap) = self.capacity {
            if self.window.len() >= cap {
                self.refused += 1;
                return SinkAck::Backpressured;
            }
        }
        self.window.push(walk.clone());
        self.peak_window = self.peak_window.max(self.window.len());
        SinkAck::Accepted
    }

    fn flush(&mut self) {
        self.flushes += 1;
        self.sealed.append(&mut self.window);
    }

    fn report(&self) -> SinkReport {
        SinkReport {
            accepted: self.len() as u64,
            refused: self.refused,
            flushes: self.flushes,
            emitted: self.sealed.len() as u64,
            buffered: self.window.len(),
            peak_buffered: self.peak_window,
        }
    }
}

/// Accepts everything and retains nothing — the O(1)-memory floor the
/// bounded-residency bench reports sink-side footprints against.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    walks: u64,
    steps: u64,
    flushes: u64,
}

impl CountingSink {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Walks accepted.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Total hops across accepted walks.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

impl WalkSink for CountingSink {
    fn accept(&mut self, walk: &CompletedWalk) -> SinkAck {
        self.walks += 1;
        self.steps += walk.path.steps();
        SinkAck::Accepted
    }

    fn flush(&mut self) {
        self.flushes += 1;
    }

    fn report(&self) -> SinkReport {
        SinkReport {
            accepted: self.walks,
            refused: 0,
            flushes: self.flushes,
            emitted: self.walks,
            buffered: 0,
            peak_buffered: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grw_algo::WalkPath;
    use grw_service::TenantId;

    fn walk(id: u64) -> CompletedWalk {
        CompletedWalk {
            tenant: TenantId(0),
            path: WalkPath::new(id, vec![0, 1, 2]),
            arrival_tick: 0,
            flushed_tick: 0,
            completed_tick: 1,
        }
    }

    #[test]
    fn unbounded_collecting_keeps_delivery_order() {
        let mut s = CollectingSink::unbounded();
        for id in [3u64, 1, 2] {
            assert_eq!(s.accept(&walk(id)), SinkAck::Accepted);
        }
        let ids: Vec<u64> = s.walks().iter().map(|w| w.path.query).collect();
        assert_eq!(ids, vec![3, 1, 2]);
        assert_eq!(s.into_walks().len(), 3);
    }

    #[test]
    fn bounded_window_refuses_until_flushed() {
        let mut s = CollectingSink::unbounded().capacity(2);
        assert_eq!(s.accept(&walk(0)), SinkAck::Accepted);
        assert_eq!(s.accept(&walk(1)), SinkAck::Accepted);
        assert_eq!(s.accept(&walk(2)), SinkAck::Backpressured);
        s.flush();
        assert_eq!(s.accept(&walk(2)), SinkAck::Accepted);
        assert_eq!(s.len(), 3, "refused walk was not lost, only deferred");
        assert_eq!(s.report().refused, 1);
        assert_eq!(s.report().peak_buffered, 2);
    }

    #[test]
    fn counting_sink_is_constant_memory() {
        let mut s = CountingSink::new();
        for id in 0..1000 {
            s.accept(&walk(id));
        }
        assert_eq!(s.walks(), 1000);
        assert_eq!(s.steps(), 2000);
        assert_eq!(s.report().buffered, 0);
        assert_eq!(s.report().peak_buffered, 0);
    }
}
