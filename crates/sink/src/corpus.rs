//! Skip-gram corpus generation from streaming walks.

use grw_service::{CompletedWalk, SinkAck, SinkReport, WalkSink};

/// One skip-gram training pair: `context` appears within the window of
/// `center` on some walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SkipGramPair {
    /// The center vertex of the window.
    pub center: u32,
    /// A vertex within `window` hops of the center on the same walk.
    pub context: u32,
}

/// Windows streamed walks into skip-gram training pairs — the
/// DeepWalk/Node2Vec corpus pipeline — inside a bounded pair buffer.
///
/// Each accepted walk contributes every `(center, context)` pair with
/// `|i - j| ≤ window`, `i ≠ j`, exactly the pair set `word2vec` trains on
/// when fed the walk as a sentence. Pairs buffer until
/// [`flush`](WalkSink::flush), which hands the whole window to the
/// `emit` consumer (a file writer, a trainer's feed queue, a counter) and
/// clears it; a walk whose pairs would overflow the buffer is refused
/// with [`SinkAck::Backpressured`] so the serving layer flushes first —
/// the resident pair count never exceeds `capacity`.
///
/// One exception keeps delivery live: a walk whose pair count exceeds the
/// *entire* capacity on its own is chunk-emitted directly (buffer flushed
/// first, pairs streamed through in capacity-sized chunks), because
/// refusing it could never succeed.
pub struct CorpusSink<F: FnMut(&[SkipGramPair])> {
    window: usize,
    capacity: usize,
    buf: Vec<SkipGramPair>,
    emit: F,
    walks: u64,
    tokens: u64,
    emitted: u64,
    refused: u64,
    flushes: u64,
    peak_buffered: usize,
}

impl<F: FnMut(&[SkipGramPair])> CorpusSink<F> {
    /// Creates a sink with the given skip-gram `window` and pair-buffer
    /// `capacity`, emitting flushed windows through `emit`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `capacity == 0`.
    pub fn new(window: usize, capacity: usize, emit: F) -> Self {
        assert!(window > 0, "skip-gram window must be positive");
        assert!(capacity > 0, "pair-buffer capacity must be positive");
        Self {
            window,
            capacity,
            buf: Vec::new(),
            emit,
            walks: 0,
            tokens: 0,
            emitted: 0,
            refused: 0,
            flushes: 0,
            peak_buffered: 0,
        }
    }

    /// Number of pairs a path of `len` vertices produces under this
    /// window: `sum_i |{j : 0 < |i-j| <= w}|`.
    fn pairs_for(&self, len: usize) -> usize {
        let w = self.window;
        (0..len)
            .map(|i| i.min(w) + (len - 1 - i).min(w))
            .sum::<usize>()
    }

    /// Appends the walk's pairs to `out`.
    fn window_pairs(&self, vertices: &[u32], out: &mut Vec<SkipGramPair>) {
        for_each_pair(self.window, vertices, |p| out.push(p));
    }

    /// Walks accepted so far.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Corpus tokens (walk vertices) accepted so far.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Pairs currently buffered (≤ capacity).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pairs handed to the `emit` consumer so far.
    pub fn pairs_emitted(&self) -> u64 {
        self.emitted
    }

    fn do_flush(&mut self) {
        self.flushes += 1;
        if self.buf.is_empty() {
            return;
        }
        (self.emit)(&self.buf);
        self.emitted += self.buf.len() as u64;
        self.buf.clear();
    }
}

impl<F: FnMut(&[SkipGramPair])> WalkSink for CorpusSink<F> {
    fn accept(&mut self, walk: &CompletedWalk) -> SinkAck {
        let vertices = &walk.path.vertices;
        let pairs = self.pairs_for(vertices.len());
        if pairs > self.capacity {
            // Bigger than the whole buffer: stream it through directly,
            // generating into the (now empty) buffer and emitting a
            // capacity-sized chunk whenever it fills — at no point is
            // more than `capacity` pairs resident.
            self.do_flush();
            let mut scratch = std::mem::take(&mut self.buf);
            for_each_pair(self.window, vertices, |p| {
                scratch.push(p);
                if scratch.len() == self.capacity {
                    self.peak_buffered = self.peak_buffered.max(scratch.len());
                    (self.emit)(&scratch);
                    self.emitted += scratch.len() as u64;
                    scratch.clear();
                }
            });
            if !scratch.is_empty() {
                self.peak_buffered = self.peak_buffered.max(scratch.len());
                (self.emit)(&scratch);
                self.emitted += scratch.len() as u64;
                scratch.clear();
            }
            self.buf = scratch;
        } else {
            if self.buf.len() + pairs > self.capacity {
                self.refused += 1;
                return SinkAck::Backpressured;
            }
            let mut buf = std::mem::take(&mut self.buf);
            buf.reserve(pairs);
            self.window_pairs(vertices, &mut buf);
            self.buf = buf;
            self.peak_buffered = self.peak_buffered.max(self.buf.len());
        }
        self.walks += 1;
        self.tokens += vertices.len() as u64;
        SinkAck::Accepted
    }

    fn flush(&mut self) {
        self.do_flush();
    }

    fn report(&self) -> SinkReport {
        SinkReport {
            accepted: self.walks,
            refused: self.refused,
            flushes: self.flushes,
            emitted: self.emitted,
            buffered: self.buf.len(),
            peak_buffered: self.peak_buffered,
        }
    }
}

/// The one definition of the skip-gram window: calls `f` for every
/// `(center, context)` pair with `0 < |i - j| <= window`, in position
/// order — both the buffered and the chunk-emitting path enumerate pairs
/// through here.
fn for_each_pair(window: usize, vertices: &[u32], mut f: impl FnMut(SkipGramPair)) {
    for (i, &center) in vertices.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window).min(vertices.len() - 1);
        for (j, &context) in vertices.iter().enumerate().take(hi + 1).skip(lo) {
            if i != j {
                f(SkipGramPair { center, context });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grw_algo::WalkPath;
    use grw_service::TenantId;

    fn walk(id: u64, vertices: Vec<u32>) -> CompletedWalk {
        CompletedWalk {
            tenant: TenantId(0),
            path: WalkPath::new(id, vertices),
            arrival_tick: 0,
            flushed_tick: 0,
            completed_tick: 1,
        }
    }

    #[test]
    fn windows_match_word2vec_pair_counts() {
        let mut pairs = Vec::new();
        let mut sink = CorpusSink::new(2, 1024, |w: &[SkipGramPair]| pairs.extend_from_slice(w));
        assert_eq!(
            sink.accept(&walk(0, vec![10, 11, 12, 13, 14])),
            SinkAck::Accepted
        );
        // len 5, window 2: positions contribute 2+3+4+3+2 = 14 pairs.
        assert_eq!(sink.buffered(), 14);
        sink.flush();
        drop(sink);
        assert_eq!(pairs.len(), 14);
        assert!(pairs.contains(&SkipGramPair {
            center: 12,
            context: 10
        }));
        assert!(pairs.contains(&SkipGramPair {
            center: 10,
            context: 12
        }));
        assert!(
            !pairs.contains(&SkipGramPair {
                center: 10,
                context: 13
            }),
            "outside window"
        );
        assert!(
            !pairs.iter().any(|p| p.center == p.context),
            "no self pairs"
        );
    }

    #[test]
    fn full_buffer_pushes_back_until_flushed() {
        let mut emitted = 0usize;
        let mut sink = CorpusSink::new(1, 8, |w: &[SkipGramPair]| emitted += w.len());
        // len-4 walk, window 1: 1+2+2+1 = 6 pairs.
        assert_eq!(sink.accept(&walk(0, vec![0, 1, 2, 3])), SinkAck::Accepted);
        assert_eq!(
            sink.accept(&walk(1, vec![0, 1, 2, 3])),
            SinkAck::Backpressured
        );
        assert_eq!(sink.report().refused, 1);
        sink.flush();
        assert_eq!(sink.accept(&walk(1, vec![0, 1, 2, 3])), SinkAck::Accepted);
        sink.flush();
        let report = sink.report();
        drop(sink);
        assert_eq!(emitted, 12);
        assert_eq!(report.accepted, 2);
        assert_eq!(report.emitted, 12);
        assert!(report.peak_buffered <= 8, "buffer bound holds");
    }

    #[test]
    fn oversized_walks_stream_through_in_chunks() {
        let mut chunks = Vec::new();
        let mut sink = CorpusSink::new(4, 10, |w: &[SkipGramPair]| chunks.push(w.len()));
        // A 40-vertex walk at window 4 produces far more than 10 pairs.
        let long: Vec<u32> = (0..40).collect();
        assert_eq!(sink.accept(&walk(0, long.clone())), SinkAck::Accepted);
        assert_eq!(
            sink.buffered(),
            0,
            "oversized walks never park in the buffer"
        );
        let report = sink.report();
        drop(sink);
        assert!(
            chunks.iter().all(|&c| c <= 10),
            "chunks respect capacity: {chunks:?}"
        );
        assert_eq!(report.emitted, chunks.iter().sum::<usize>() as u64);
        assert!(report.emitted > 10);
        // Chunked emission produces exactly the pair stream a huge buffer
        // would: same pairs, same order.
        let mut whole = Vec::new();
        let mut big = CorpusSink::new(4, 1 << 20, |w: &[SkipGramPair]| whole.extend_from_slice(w));
        big.accept(&walk(0, long.clone()));
        big.flush();
        drop(big);
        let mut rechunked = Vec::new();
        let mut small = CorpusSink::new(4, 10, |w: &[SkipGramPair]| rechunked.extend_from_slice(w));
        small.accept(&walk(1, long));
        drop(small);
        assert_eq!(whole, rechunked);
    }

    #[test]
    fn token_and_walk_counters_accumulate() {
        let mut sink = CorpusSink::new(2, 64, |_: &[SkipGramPair]| {});
        sink.accept(&walk(0, vec![1, 2, 3]));
        sink.accept(&walk(1, vec![4, 5]));
        assert_eq!(sink.walks(), 2);
        assert_eq!(sink.tokens(), 5);
        assert!(sink.pairs_emitted() == 0);
        sink.flush();
        assert_eq!(sink.pairs_emitted(), 6 + 2);
    }
}
