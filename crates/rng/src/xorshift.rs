//! Shift-register generators: cheap per-cycle decorrelators.
//!
//! On the FPGA these cost a handful of LUTs per stream, which is why
//! ThundeRiNG uses xorshift permutations to decouple many outputs from a
//! single shared state core.

use crate::{RandomSource, SplitMix64};

/// Marsaglia's xorshift64* generator.
///
/// A 64-bit xorshift register with a multiplicative output scrambler.
/// Period 2^64 - 1; the all-zero state is forbidden and remapped at
/// construction.
///
/// # Example
///
/// ```
/// use grw_rng::{RandomSource, XorShift64Star};
///
/// let mut g = XorShift64Star::new(42);
/// assert_ne!(g.next_u64(), g.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator; a zero seed is remapped to a fixed non-zero state.
    pub fn new(seed: u64) -> Self {
        let mixed = SplitMix64::mix(seed);
        Self {
            state: if mixed == 0 { 0x9E37_79B9 } else { mixed },
        }
    }

    /// Applies one raw xorshift step (13/7/17 triple) to `x`.
    pub fn step(mut x: u64) -> u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }
}

impl RandomSource for XorShift64Star {
    fn next_u64(&mut self) -> u64 {
        self.state = Self::step(self.state);
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// xoshiro256** (Blackman & Vigna): the general-purpose workhorse.
///
/// 256 bits of state, period 2^256 - 1, excellent statistical quality.
/// Used where the walk engines need a high-quality scalar generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator, expanding `seed` through SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The `jump()` function: advances the stream by 2^128 steps, giving
    /// non-overlapping substreams for parallel use.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl RandomSource for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_zero_seed_is_usable() {
        let mut g = XorShift64Star::new(0);
        let x = g.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, g.next_u64());
    }

    #[test]
    fn xorshift_step_never_maps_nonzero_to_zero() {
        // xorshift is a bijection on nonzero states.
        for seed in 1..2000u64 {
            assert_ne!(XorShift64Star::step(seed), 0);
        }
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256StarStar::new(99);
        let mut b = Xoshiro256StarStar::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_jump_decorrelates() {
        let mut a = Xoshiro256StarStar::new(1);
        let mut b = Xoshiro256StarStar::new(1);
        b.jump();
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
        // No element-wise collisions expected in 64 draws.
        let collisions = xs.iter().zip(&ys).filter(|(x, y)| x == y).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn xoshiro_mean_is_balanced() {
        let mut g = Xoshiro256StarStar::new(7);
        let mean: f64 = (0..50_000).map(|_| g.next_f64()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01);
    }
}
