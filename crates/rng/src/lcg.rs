//! 64-bit linear-congruential core with logarithmic jump-ahead.

use crate::RandomSource;

/// Knuth's MMIX multiplier.
const MUL: u64 = 6_364_136_223_846_793_005;
/// Default increment (must be odd for full period).
const INC: u64 = 1_442_695_040_888_963_407;

/// A 64-bit linear congruential generator `s' = s * a + c` with a
/// PCG-XSH-RR output permutation.
///
/// This is the state-transition core of ThundeRiNG: the LCG update is a
/// single DSP multiply-add per cycle on the FPGA, and distinct increments
/// yield distinct full-period sequences. [`Lcg64::jump`] advances the state
/// by `n` steps in O(log n), which is how parallel leap-frogged streams are
/// seeded.
///
/// # Example
///
/// ```
/// use grw_rng::{Lcg64, RandomSource};
///
/// let mut a = Lcg64::new(3);
/// let mut b = Lcg64::new(3);
/// for _ in 0..10 { a.next_u64(); }
/// b.jump(10);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lcg64 {
    state: u64,
    increment: u64,
}

impl Lcg64 {
    /// Creates a generator with the default increment.
    pub fn new(seed: u64) -> Self {
        Self::with_increment(seed, INC)
    }

    /// Creates a generator with a caller-chosen increment.
    ///
    /// The increment is forced odd (even increments halve the period).
    pub fn with_increment(seed: u64, increment: u64) -> Self {
        Self {
            state: seed,
            increment: increment | 1,
        }
    }

    /// Returns the raw LCG state without advancing it.
    pub fn peek_state(&self) -> u64 {
        self.state
    }

    /// Advances the generator by `n` steps in O(log n) time.
    ///
    /// Uses the standard power-of-the-affine-map decomposition:
    /// `s_{k+n} = a^n * s_k + c * (a^n - 1) / (a - 1)` computed by repeated
    /// squaring over the affine semigroup.
    pub fn jump(&mut self, mut n: u64) {
        // Accumulate the affine map (mul_acc, add_acc).
        let mut mul_acc: u64 = 1;
        let mut add_acc: u64 = 0;
        let mut cur_mul = MUL;
        let mut cur_add = self.increment;
        while n > 0 {
            if n & 1 == 1 {
                mul_acc = mul_acc.wrapping_mul(cur_mul);
                add_acc = add_acc.wrapping_mul(cur_mul).wrapping_add(cur_add);
            }
            cur_add = cur_mul.wrapping_add(1).wrapping_mul(cur_add);
            cur_mul = cur_mul.wrapping_mul(cur_mul);
            n >>= 1;
        }
        self.state = self.state.wrapping_mul(mul_acc).wrapping_add(add_acc);
    }

    /// PCG-XSH-RR output permutation: xorshift-high then random rotate.
    fn permute(state: u64) -> u64 {
        let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
        let rot = (state >> 59) as u32;
        let hi = xorshifted.rotate_right(rot) as u64;
        (hi << 32) | Self::low_half(state)
    }

    // Mix the low half so the full 64-bit output is usable; the classic PCG
    // emits 32 bits, we widen it by folding in a xorshifted copy.
    fn low_half(state: u64) -> u64 {
        let x = state ^ (state >> 33);
        (x.wrapping_mul(0xFF51_AFD7_ED55_8CCD) >> 32) & 0xFFFF_FFFF
    }
}

impl Default for Lcg64 {
    fn default() -> Self {
        Self::new(0)
    }
}

impl RandomSource for Lcg64 {
    fn next_u64(&mut self) -> u64 {
        let old = self.state;
        self.state = old.wrapping_mul(MUL).wrapping_add(self.increment);
        Lcg64::permute(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_matches_stepping() {
        for steps in [0u64, 1, 2, 3, 17, 100, 1023, 65_536] {
            let mut stepped = Lcg64::new(0xDEAD_BEEF);
            for _ in 0..steps {
                stepped.next_u64();
            }
            let mut jumped = Lcg64::new(0xDEAD_BEEF);
            jumped.jump(steps);
            assert_eq!(
                stepped.peek_state(),
                jumped.peek_state(),
                "divergence after {steps} steps"
            );
        }
    }

    #[test]
    fn distinct_increments_give_distinct_sequences() {
        let mut a = Lcg64::with_increment(1, 3);
        let mut b = Lcg64::with_increment(1, 5);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn even_increment_is_made_odd() {
        let g = Lcg64::with_increment(0, 4);
        assert_eq!(g.increment % 2, 1);
    }

    #[test]
    fn output_mean_is_balanced() {
        let mut g = Lcg64::new(11);
        let mean: f64 = (0..50_000).map(|_| g.next_f64()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn jump_zero_is_identity() {
        let mut g = Lcg64::new(42);
        let before = g.peek_state();
        g.jump(0);
        assert_eq!(g.peek_state(), before);
    }
}
