//! ThundeRiNG-style pseudo-random number generation for graph random walks.
//!
//! RidgeWalker pairs every sampling module with a ThundeRiNG instance — an
//! FPGA-optimised generator that produces *many statistically independent
//! streams* from a single cheap state-transition core. This crate reproduces
//! that contract in software:
//!
//! * [`SplitMix64`] — seeding and general-purpose scalar generation.
//! * [`XorShift64Star`] and [`Xoshiro256StarStar`] — classic shift-register
//!   generators used as output decorrelators.
//! * [`Lcg64`] — a 64-bit multiplicative-congruential core with O(log n)
//!   jump-ahead, the state-transition kernel of ThundeRiNG.
//! * [`Philox4x32`] — a counter-based generator: stateless per-task random
//!   numbers keyed by `(query, step)`, matching RidgeWalker's stateless task
//!   decomposition.
//! * [`ThunderRing`] — the multi-stream generator: one shared LCG update per
//!   cycle fans out to `S` decorrelated streams.
//! * [`dist`] — uniform/exponential/geometric/Poisson/Zipf samplers built on
//!   top of any [`RandomSource`].
//!
//! # Example
//!
//! ```
//! use grw_rng::{RandomSource, ThunderRing};
//!
//! let mut ring = ThunderRing::new(0xC0FFEE, 4);
//! let a: Vec<u64> = (0..3).map(|_| ring.stream_mut(0).next_u64()).collect();
//! let b: Vec<u64> = (0..3).map(|_| ring.stream_mut(1).next_u64()).collect();
//! assert_ne!(a, b, "streams are decorrelated");
//! ```

pub mod dist;
mod lcg;
mod philox;
mod splitmix;
mod thundering;
mod xorshift;

pub use lcg::Lcg64;
pub use philox::Philox4x32;
pub use splitmix::SplitMix64;
pub use thundering::{correlation, StreamRng, ThunderRing};
pub use xorshift::{XorShift64Star, Xoshiro256StarStar};

/// A deterministic source of uniformly distributed 64-bit values.
///
/// All generators in this crate implement this trait. Default methods derive
/// floats, bounded integers and coin flips from the raw 64-bit output without
/// modulo bias (Lemire's multiply-shift rejection method).
pub trait RandomSource {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` using the high 53 bits.
    fn next_f64(&mut self) -> f64 {
        // 53 bits of mantissa; divide by 2^53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's method: multiply-shift with rejection of the biased zone.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn next_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }
}

/// Blanket impl so `&mut G` can be passed where a source is consumed.
impl<T: RandomSource + ?Sized> RandomSource for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of<G: RandomSource>(gen: &mut G, n: usize) -> f64 {
        (0..n).map(|_| gen.next_f64()).sum::<f64>() / n as f64
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut g = SplitMix64::new(1);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut g = SplitMix64::new(42);
        let m = mean_of(&mut g, 100_000);
        assert!((m - 0.5).abs() < 0.01, "mean {m} too far from 0.5");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut g = XorShift64Star::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(g.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut g = SplitMix64::new(9);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[g.next_below(10) as usize] += 1;
        }
        let expected = n as f64 / 10.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 9 degrees of freedom; 99.9th percentile is ~27.9.
        assert!(chi2 < 30.0, "chi-square {chi2} too large");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        let mut g = SplitMix64::new(1);
        let _ = g.next_below(0);
    }

    #[test]
    fn next_bool_extremes() {
        let mut g = SplitMix64::new(1);
        assert!(g.next_bool(1.0));
        assert!(!g.next_bool(0.0));
    }

    #[test]
    fn next_bool_frequency_tracks_p() {
        let mut g = SplitMix64::new(3);
        let hits = (0..100_000).filter(|_| g.next_bool(0.3)).count();
        let f = hits as f64 / 100_000.0;
        assert!((f - 0.3).abs() < 0.01, "frequency {f}");
    }

    #[test]
    fn mut_ref_is_a_source() {
        fn draw<G: RandomSource>(mut g: G) -> u64 {
            g.next_u64()
        }
        let mut g = SplitMix64::new(5);
        let direct = SplitMix64::new(5).next_u64();
        assert_eq!(draw(&mut g), direct);
    }
}
