//! Distribution samplers layered over any [`RandomSource`].
//!
//! These cover every distribution the reproduction needs: exponential
//! service times and Poisson arrivals for the queuing model (§VI of the
//! paper), geometric lengths for PPR termination, and Zipf for skewed
//! synthetic workloads.

use crate::RandomSource;

/// Samples `Exp(rate)`: the service-time distribution of the `M/M/1[N]` model.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn exponential<G: RandomSource>(gen: &mut G, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    // Inverse CDF; guard the log(0) corner by nudging u away from 0.
    let u = gen.next_f64().max(f64::MIN_POSITIVE);
    -u.ln() / rate
}

/// Samples a geometric number of trials until first success (support 1..).
///
/// Matches PPR termination: a walk survives each hop with probability
/// `1 - p`, so its length is `Geometric(p)`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1]`.
pub fn geometric<G: RandomSource>(gen: &mut G, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    if p >= 1.0 {
        return 1;
    }
    let u = gen.next_f64().max(f64::MIN_POSITIVE);
    // Inverse CDF of the geometric distribution.
    (u.ln() / (1.0 - p).ln()).floor() as u64 + 1
}

/// Samples `Poisson(lambda)` via Knuth's product method for small `lambda`
/// and normal approximation (rounded, clamped at 0) for large `lambda`.
///
/// # Panics
///
/// Panics if `lambda` is negative.
pub fn poisson<G: RandomSource>(gen: &mut G, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product = gen.next_f64();
        let mut count = 0u64;
        while product > limit {
            product *= gen.next_f64();
            count += 1;
        }
        count
    } else {
        // Normal approximation with continuity correction.
        let z = normal(gen);
        let v = lambda + lambda.sqrt() * z + 0.5;
        if v < 0.0 {
            0
        } else {
            v as u64
        }
    }
}

/// Samples a standard normal via Box–Muller.
pub fn normal<G: RandomSource>(gen: &mut G) -> f64 {
    let u1 = gen.next_f64().max(f64::MIN_POSITIVE);
    let u2 = gen.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A Zipf-distributed sampler over `{0, 1, .., n-1}` with exponent `s`.
///
/// Rank `k` (0-based) is drawn with probability proportional to
/// `1 / (k+1)^s`. Uses a precomputed cumulative table with binary search —
/// O(n) memory, O(log n) per draw — which is exactly what the synthetic
/// workload generators need (n = vertex count of a scaled graph).
///
/// # Example
///
/// ```
/// use grw_rng::{dist::Zipf, RandomSource, SplitMix64};
///
/// let zipf = Zipf::new(100, 1.2);
/// let mut g = SplitMix64::new(1);
/// assert!(zipf.sample(&mut g) < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Self { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns `true` if the sampler has exactly one rank.
    pub fn is_empty(&self) -> bool {
        false // construction guarantees n > 0
    }

    /// Draws one rank in `[0, n)`.
    pub fn sample<G: RandomSource>(&self, gen: &mut G) -> usize {
        let u = gen.next_f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in table"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn exponential_mean_matches_rate() {
        let mut g = SplitMix64::new(10);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut g, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}, expected 0.5");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let mut g = SplitMix64::new(1);
        let _ = exponential(&mut g, 0.0);
    }

    #[test]
    fn geometric_mean_is_one_over_p() {
        let mut g = SplitMix64::new(4);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| geometric(&mut g, 0.15) as f64).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / 0.15).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn geometric_with_p_one_is_always_one() {
        let mut g = SplitMix64::new(4);
        for _ in 0..100 {
            assert_eq!(geometric(&mut g, 1.0), 1);
        }
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut g = SplitMix64::new(8);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut g, 3.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let mut g = SplitMix64::new(8);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut g, 100.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut g = SplitMix64::new(8);
        assert_eq!(poisson(&mut g, 0.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut g = SplitMix64::new(12);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut g)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let zipf = Zipf::new(50, 1.5);
        let mut g = SplitMix64::new(3);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut g)] += 1;
        }
        assert!(counts[0] > counts[1], "rank 0 should dominate rank 1");
        assert!(counts[1] > counts[10], "rank 1 should dominate rank 10");
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let zipf = Zipf::new(10, 0.0);
        let mut g = SplitMix64::new(6);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[zipf.sample(&mut g)] += 1;
        }
        let expected = n as f64 / 10.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "rank {i} count {c} deviates from uniform"
            );
        }
    }

    #[test]
    fn zipf_samples_in_range() {
        let zipf = Zipf::new(7, 2.0);
        let mut g = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut g) < 7);
        }
    }
}
