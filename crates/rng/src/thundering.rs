//! The ThundeRiNG multi-stream generator.
//!
//! ThundeRiNG (Tan et al., ICS'21 — the RNG RidgeWalker instantiates next to
//! every sampling module) generates `S` statistically independent sequences
//! from a *single* shared state-transition core: one LCG update per cycle is
//! broadcast to `S` lightweight per-stream decorrelators, each consisting of
//! a unique Weyl increment plus an xorshift output permutation. On the FPGA
//! this costs one DSP multiplier total plus a few LUTs per stream; here it
//! means `S` streams share one `Lcg64` update per draw round.

use crate::{Lcg64, RandomSource, SplitMix64, XorShift64Star};

/// One decorrelated output stream of a [`ThunderRing`].
///
/// A stream owns its Weyl counter and xorshift register; it consumes raw
/// core states pushed by the ring. `StreamRng` is also usable standalone by
/// driving it with [`StreamRng::absorb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamRng {
    /// Per-stream Weyl increment (odd, unique per stream).
    increment: u64,
    /// Weyl accumulator.
    weyl: u64,
    /// xorshift decorrelation register.
    xs: u64,
    /// Last absorbed core state.
    core: u64,
}

impl StreamRng {
    /// Creates a stream with the given unique odd increment.
    pub fn new(stream_id: u64, seed: u64) -> Self {
        let mixed = SplitMix64::mix(seed ^ stream_id.wrapping_mul(0xA24B_AED4_963E_E407));
        Self {
            increment: (stream_id << 1) | 1,
            weyl: mixed,
            xs: if mixed == 0 { 1 } else { mixed },
            core: SplitMix64::mix(seed),
        }
    }

    /// Feeds one shared core state into the stream (the hardware broadcast).
    pub fn absorb(&mut self, core_state: u64) {
        self.core = core_state;
    }

    fn output(&mut self) -> u64 {
        // Weyl sequence: s_i(t) = t * increment_i, full period, distinct per
        // stream; combined with the shared core and passed through xorshift.
        self.weyl = self
            .weyl
            .wrapping_add(self.increment.wrapping_mul(SplitMix64::GAMMA));
        self.xs = XorShift64Star::step(self.xs);
        SplitMix64::mix(self.core ^ self.weyl).wrapping_add(self.xs)
    }
}

impl RandomSource for StreamRng {
    fn next_u64(&mut self) -> u64 {
        self.output()
    }
}

/// The multi-stream ring: one shared LCG core feeding `S` streams.
///
/// # Example
///
/// ```
/// use grw_rng::{RandomSource, ThunderRing};
///
/// let mut ring = ThunderRing::new(1, 8);
/// assert_eq!(ring.streams(), 8);
/// let x = ring.stream_mut(5).next_u64();
/// let y = ring.stream_mut(5).next_u64();
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone)]
pub struct ThunderRing {
    core: Lcg64,
    streams: Vec<StreamRng>,
}

impl ThunderRing {
    /// Creates a ring with `streams` decorrelated outputs.
    ///
    /// # Panics
    ///
    /// Panics if `streams == 0`.
    pub fn new(seed: u64, streams: usize) -> Self {
        assert!(streams > 0, "a ThunderRing needs at least one stream");
        let core = Lcg64::new(SplitMix64::mix(seed));
        let streams = (0..streams as u64)
            .map(|i| StreamRng::new(i, seed))
            .collect();
        Self { core, streams }
    }

    /// Number of streams in the ring.
    pub fn streams(&self) -> usize {
        self.streams.len()
    }

    /// Advances the shared core once and broadcasts it to all streams.
    ///
    /// Models one hardware cycle of the generator. Call before draining each
    /// stream's output in lock-step designs; `stream_mut` also advances the
    /// core lazily, so calling this is optional for software use.
    pub fn tick(&mut self) {
        let state = self.core.next_u64();
        for s in &mut self.streams {
            s.absorb(state);
        }
    }

    /// Mutable access to stream `i`, advancing the shared core first.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.streams()`.
    pub fn stream_mut(&mut self, i: usize) -> &mut StreamRng {
        let state = self.core.next_u64();
        let s = &mut self.streams[i];
        s.absorb(state);
        s
    }

    /// Draws one value from stream `i` (convenience for `stream_mut(i).next_u64()`).
    pub fn draw(&mut self, i: usize) -> u64 {
        self.stream_mut(i).next_u64()
    }
}

impl RandomSource for ThunderRing {
    /// Draws from stream 0; lets a whole ring act as a scalar source.
    fn next_u64(&mut self) -> u64 {
        self.draw(0)
    }
}

/// Pearson correlation between two equal-length u64 sequences, mapped to
/// [0,1) floats. Used by the independence tests and exposed for reuse.
pub fn correlation(xs: &[u64], ys: &[u64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let to_f = |v: u64| (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let n = xs.len() as f64;
    let mx = xs.iter().map(|&x| to_f(x)).sum::<f64>() / n;
    let my = ys.iter().map(|&y| to_f(y)).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = to_f(x) - mx;
        let dy = to_f(y) - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_panics() {
        let _ = ThunderRing::new(1, 0);
    }

    #[test]
    fn ring_is_deterministic() {
        let mut a = ThunderRing::new(77, 4);
        let mut b = ThunderRing::new(77, 4);
        for i in 0..4 {
            assert_eq!(a.draw(i), b.draw(i));
        }
    }

    #[test]
    fn streams_differ_from_each_other() {
        let mut ring = ThunderRing::new(5, 8);
        let mut outs: Vec<Vec<u64>> = Vec::new();
        for i in 0..8 {
            outs.push((0..64).map(|_| ring.draw(i)).collect());
        }
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_ne!(outs[i], outs[j], "streams {i} and {j} identical");
            }
        }
    }

    #[test]
    fn inter_stream_correlation_is_low() {
        let mut ring = ThunderRing::new(31, 2);
        let n = 20_000;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            ring.tick();
            xs.push(ring.streams[0].next_u64());
            ys.push(ring.streams[1].next_u64());
        }
        let r = correlation(&xs, &ys);
        assert!(r.abs() < 0.03, "cross-stream correlation {r} too high");
    }

    #[test]
    fn lagged_self_correlation_is_low() {
        let mut ring = ThunderRing::new(13, 1);
        let n = 20_000;
        let seq: Vec<u64> = (0..n + 1).map(|_| ring.draw(0)).collect();
        let r = correlation(&seq[..n], &seq[1..]);
        assert!(r.abs() < 0.03, "lag-1 autocorrelation {r} too high");
    }

    #[test]
    fn stream_mean_is_balanced() {
        let mut ring = ThunderRing::new(2, 3);
        let mean: f64 = (0..30_000)
            .map(|_| {
                let v = ring.draw(1);
                (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
            })
            .sum::<f64>()
            / 30_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn correlation_of_identical_sequences_is_one() {
        let xs: Vec<u64> = (0..100).map(SplitMix64::mix).collect();
        let r = correlation(&xs, &xs);
        assert!((r - 1.0).abs() < 1e-9);
    }
}
