//! Philox: a counter-based generator for stateless per-task randomness.
//!
//! RidgeWalker decomposes walks into stateless tasks; a counter-based RNG
//! keyed by `(query id, step)` lets any pipeline draw the *same* random
//! stream for a task regardless of where the task executes — no mutable RNG
//! state has to travel with the task.

use crate::RandomSource;

const PHILOX_M0: u64 = 0xD251_1F53;
const PHILOX_M1: u64 = 0xCD9E_8D57;
const W0: u32 = 0x9E37_79B9;
const W1: u32 = 0xBB67_AE85;
const ROUNDS: usize = 10;

/// Philox4x32-10 counter-based generator (Salmon et al., SC'11).
///
/// Each `(key, counter)` pair maps to 128 bits of output through ten
/// bijective rounds; incrementing the counter yields an independent stream
/// of blocks. The generator buffers one block and serves two `u64`s from it.
///
/// # Example
///
/// ```
/// use grw_rng::{Philox4x32, RandomSource};
///
/// // Task-keyed: same (query, step) always yields the same draw.
/// let a = Philox4x32::keyed(7, 3).next_u64();
/// let b = Philox4x32::keyed(7, 3).next_u64();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Philox4x32 {
    key: [u32; 2],
    counter: [u32; 4],
    buffer: [u32; 4],
    /// Next 32-bit word of `buffer` to serve; 4 means "refill needed".
    cursor: u8,
}

impl Philox4x32 {
    /// Creates a generator from a 64-bit seed (the key); counter starts at 0.
    pub fn new(seed: u64) -> Self {
        Self {
            key: [seed as u32, (seed >> 32) as u32],
            counter: [0; 4],
            buffer: [0; 4],
            cursor: 4,
        }
    }

    /// Creates a generator keyed by a `(query, step)` pair.
    ///
    /// This is the stateless-task entry point: the pair fully determines the
    /// stream, so a task re-executed on any pipeline draws identical values.
    pub fn keyed(query: u64, step: u64) -> Self {
        Self {
            key: [query as u32, (query >> 32) as u32],
            counter: [step as u32, (step >> 32) as u32, 0x5EED, 0],
            buffer: [0; 4],
            cursor: 4,
        }
    }

    /// Computes one 128-bit block for `(key, counter)` without mutation.
    pub fn block(key: [u32; 2], counter: [u32; 4]) -> [u32; 4] {
        let mut c = counter;
        let mut k = key;
        for _ in 0..ROUNDS {
            c = Self::round(c, k);
            k[0] = k[0].wrapping_add(W0);
            k[1] = k[1].wrapping_add(W1);
        }
        c
    }

    fn round(c: [u32; 4], k: [u32; 2]) -> [u32; 4] {
        let p0 = PHILOX_M0.wrapping_mul(c[0] as u64);
        let p1 = PHILOX_M1.wrapping_mul(c[2] as u64);
        [
            ((p1 >> 32) as u32) ^ c[1] ^ k[0],
            p1 as u32,
            ((p0 >> 32) as u32) ^ c[3] ^ k[1],
            p0 as u32,
        ]
    }

    fn refill(&mut self) {
        self.buffer = Self::block(self.key, self.counter);
        self.cursor = 0;
        // 128-bit counter increment.
        for limb in &mut self.counter {
            let (v, carry) = limb.overflowing_add(1);
            *limb = v;
            if !carry {
                break;
            }
        }
    }
}

impl RandomSource for Philox4x32 {
    fn next_u64(&mut self) -> u64 {
        // The cursor only ever holds 0, 2 or 4: each call serves two words.
        if self.cursor >= 4 {
            self.refill();
        }
        let lo = self.buffer[self.cursor as usize] as u64;
        let hi = self.buffer[self.cursor as usize + 1] as u64;
        self.cursor += 2;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_is_deterministic() {
        let a = Philox4x32::block([1, 2], [3, 4, 5, 6]);
        let b = Philox4x32::block([1, 2], [3, 4, 5, 6]);
        assert_eq!(a, b);
    }

    #[test]
    fn block_depends_on_key_and_counter() {
        let base = Philox4x32::block([1, 2], [3, 4, 5, 6]);
        assert_ne!(base, Philox4x32::block([1, 3], [3, 4, 5, 6]));
        assert_ne!(base, Philox4x32::block([1, 2], [4, 4, 5, 6]));
    }

    #[test]
    fn keyed_streams_are_reproducible() {
        let xs: Vec<u64> = {
            let mut g = Philox4x32::keyed(42, 8);
            (0..16).map(|_| g.next_u64()).collect()
        };
        let ys: Vec<u64> = {
            let mut g = Philox4x32::keyed(42, 8);
            (0..16).map(|_| g.next_u64()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn adjacent_task_keys_are_uncorrelated() {
        let mut a = Philox4x32::keyed(1, 1);
        let mut b = Philox4x32::keyed(1, 2);
        let collisions = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn stream_is_balanced() {
        let mut g = Philox4x32::new(0xFEED);
        let mean: f64 = (0..50_000).map(|_| g.next_f64()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.012, "mean {mean}");
    }
}
