//! SplitMix64: the canonical seeding generator.

use crate::RandomSource;

/// SplitMix64 generator (Steele, Lea & Flood).
///
/// A Weyl-sequence state with an avalanche output function. Equidistributed,
/// period 2^64, and the standard tool for expanding one 64-bit seed into the
/// larger states of other generators.
///
/// # Example
///
/// ```
/// use grw_rng::{RandomSource, SplitMix64};
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Golden-ratio increment of the Weyl sequence.
    pub const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the raw internal state (the Weyl counter).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Applies the SplitMix64 finalizer to an arbitrary value.
    ///
    /// Useful for hashing task keys into RNG seeds without constructing a
    /// generator.
    pub fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

impl RandomSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GAMMA);
        SplitMix64::mix(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // Known test vector for seed 0 (matches the reference C code).
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn mix_is_not_identity() {
        assert_ne!(SplitMix64::mix(12345), 12345);
        // mix has exactly one fixed point, at zero.
        assert_eq!(SplitMix64::mix(0), 0);
    }

    #[test]
    fn state_advances_by_gamma() {
        let mut g = SplitMix64::new(100);
        let s0 = g.state();
        g.next_u64();
        assert_eq!(g.state(), s0.wrapping_add(SplitMix64::GAMMA));
    }
}
