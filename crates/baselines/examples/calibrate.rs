//! Calibration probe: prints the raw throughput of every engine on a grid
//! of workloads. Used to tune the baseline models against the paper's
//! ratios; kept as an example so maintainers can re-run it after changes.

use grw_algo::{Node2VecMethod, PreparedGraph, QuerySet, WalkSpec};
use grw_baselines::{FastRw, GSampler, LightRw, SuEtAl};
use grw_graph::generators::{Dataset, RmatConfig, ScaleFactor};
use grw_sim::FpgaPlatform;
use ridgewalker::{Accelerator, AcceleratorConfig};

fn main() {
    let queries = 8192;

    println!("== Su et al. vs RidgeWalker (U280, WG tiny, URW-24) ==");
    {
        let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
        let spec = WalkSpec::urw(24);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), queries, 1);
        let su = SuEtAl::new().run(&p, &spec, qs.queries());
        let rw = Accelerator::new(AcceleratorConfig::new().platform(FpgaPlatform::AlveoU280)).run(
            &p,
            &spec,
            qs.queries(),
        );
        println!(
            "su {:.0} (bub {:.2}) rw {:.0} (bub {:.2}) speedup {:.2}",
            su.msteps_per_sec,
            su.bubble_ratio,
            rw.msteps_per_sec,
            rw.bubble_ratio,
            rw.speedup_over(&su)
        );
    }

    println!("== LightRW vs RidgeWalker (U250, LJ tiny, N2V-reservoir-20) ==");
    {
        let g = Dataset::LiveJournal.generate_weighted(ScaleFactor::Tiny);
        let spec = WalkSpec::node2vec(20, Node2VecMethod::Reservoir);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), queries, 5);
        let lw = LightRw::new().run(&p, &spec, qs.queries());
        let rw = Accelerator::new(AcceleratorConfig::new().platform(FpgaPlatform::AlveoU250)).run(
            &p,
            &spec,
            qs.queries(),
        );
        println!(
            "lightrw {:.1} ({} cyc, bub {:.2}, txn/step {:.1}) rw {:.1} ({} cyc, bub {:.2}, txn/step {:.1}) speedup {:.2}",
            lw.msteps_per_sec, lw.cycles, lw.bubble_ratio, lw.txns_per_step(),
            rw.msteps_per_sec, rw.cycles, rw.bubble_ratio, rw.txns_per_step(),
            rw.speedup_over(&lw)
        );
    }

    println!("== FastRW cache sweep (U50, WG tiny, DeepWalk-24) ==");
    {
        let g = Dataset::WebGoogle.generate_weighted(ScaleFactor::Tiny);
        let spec = WalkSpec::deepwalk(24);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), queries, 7);
        for cache in [usize::MAX, 56_000, 1_000, 16] {
            let f = FastRw::new()
                .cache_entries(cache.min(p.graph().vertex_count()))
                .run(&p, &spec, qs.queries());
            println!(
                "cache {:>8}: {:.1} MStep/s (bub {:.2})",
                cache.min(p.graph().vertex_count()),
                f.msteps_per_sec,
                f.bubble_ratio
            );
        }
        let rw = Accelerator::new(AcceleratorConfig::new().platform(FpgaPlatform::AlveoU50)).run(
            &p,
            &spec,
            qs.queries(),
        );
        println!("ridgewalker: {:.1} MStep/s", rw.msteps_per_sec);
    }

    println!("== GPU: balanced vs graph500 RMAT (URW-40 / DeepWalk-40) ==");
    {
        for (name, cfg) in [
            ("balanced s12 ef16", RmatConfig::balanced(12, 16).seed(1)),
            ("graph500 s12 ef16", RmatConfig::graph500(12, 16).seed(1)),
            ("graph500 s13 ef8", RmatConfig::graph500(13, 8).seed(1)),
        ] {
            let g = cfg.generate();
            let spec = WalkSpec::urw(40);
            let p = PreparedGraph::new(g, &spec).unwrap();
            let qs = QuerySet::random(p.graph().vertex_count(), 2048, 3);
            let r = GSampler::new().run(&p, &spec, qs.queries());
            println!(
                "{name}: {:.0} MStep/s live {:.2} cv {:.2} bound {:?}",
                r.msteps_per_sec, r.live_lane_fraction, r.visited_degree_cv, r.bound
            );
        }
    }

    println!("== GPU on real stand-ins (URW-80) vs RW U55C ==");
    {
        for d in Dataset::all() {
            let g = d.generate(ScaleFactor::Tiny);
            let spec = WalkSpec::urw(80);
            let p = PreparedGraph::new(g, &spec).unwrap();
            let qs = QuerySet::random(p.graph().vertex_count(), 2048, 3);
            let gpu = GSampler::new().run(&p, &spec, qs.queries());
            let rw = Accelerator::new(AcceleratorConfig::new()).run(&p, &spec, qs.queries());
            println!(
                "{d}: gpu {:.0} (live {:.2} cv {:.2} {:?}) rw {:.0} speedup {:.2}",
                gpu.msteps_per_sec,
                gpu.live_lane_fraction,
                gpu.visited_degree_cv,
                gpu.bound,
                rw.msteps_per_sec,
                rw.msteps_per_sec / gpu.msteps_per_sec
            );
        }
    }
}
