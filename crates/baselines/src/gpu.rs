//! gSampler GPU model (Gong et al., SOSP'23) — the Fig. 9 / Fig. 10
//! baseline.
//!
//! gSampler executes GRWs as super-batched SIMT kernels. The model runs
//! the *functional* walk exactly (same samplers as everything else), then
//! prices the execution with the three ceilings the paper's analysis
//! identifies:
//!
//! 1. **Random-access memory bandwidth** — measured 8-byte-granule random
//!    rate, degraded on ragged (high degree-variance) graphs where the
//!    vectorized gather kernels waste sectors and lanes:
//!    `R_eff = R_random / (1 + κ·cv)` with `cv` the coefficient of
//!    variation of visited-vertex degrees. Evenly distributed accesses
//!    (balanced RMAT) keep near-full efficiency (§VIII-C2).
//! 2. **Warp-lockstep issue** — every warp-round burns 32 lane-slots no
//!    matter how many threads still live, so early-terminating walks
//!    (PPR, dead ends, Graph500 skew) waste issue bandwidth; alias
//!    sampling doubles per-lane work (two PRNs per step, Fig. 9c).
//! 3. **Kernel rounds** — an optional per-round launch/epilogue charge
//!    (super-batching amortizes it; zero by default).
//!
//! Node2Vec's membership probes are binary searches over sorted neighbor
//! lists — structured accesses the GPU caches well, so they are charged at
//! a locality discount (the Fig. 9d effect).

use grw_algo::{PreparedGraph, WalkPath, WalkQuery, WalkSpec};
use grw_graph::VertexId;
use grw_rng::{SplitMix64, Xoshiro256StarStar};

/// Width of a SIMT warp.
const WARP: usize = 32;

/// Hardware constants of the GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Device name.
    pub name: &'static str,
    /// Sequential HBM bandwidth, GB/s (context only).
    pub seq_bandwidth_gbs: f64,
    /// Measured 64-bit random transaction rate, millions/s.
    pub random_mtps: f64,
    /// Aggregate lane-issue rate, million lane-steps/s.
    pub lane_rate_msteps: f64,
    /// Raggedness sensitivity κ of the gather kernels.
    pub raggedness_kappa: f64,
    /// Per-round kernel launch/epilogue overhead in microseconds
    /// (0 = fully amortized by super-batching).
    pub launch_overhead_us: f64,
}

impl GpuSpec {
    /// NVIDIA H100 PCIe (the paper's GPU testbed).
    pub fn h100() -> Self {
        Self {
            name: "H100",
            seq_bandwidth_gbs: 2093.0,
            // Fig. 10 red line: ~9.5 GStep/s DeepWalk at 2 txns/step on
            // evenly distributed accesses → ~19 Gtxn/s.
            random_mtps: 19_000.0,
            lane_rate_msteps: 20_000.0,
            raggedness_kappa: 10.0,
            launch_overhead_us: 0.0,
        }
    }
}

/// Execution report of the GPU model.
#[derive(Debug, Clone)]
pub struct GpuReport {
    /// One path per query, in input order.
    pub paths: Vec<WalkPath>,
    /// Hops executed.
    pub steps: u64,
    /// Modelled execution time in milliseconds.
    pub time_ms: f64,
    /// Throughput in MStep/s.
    pub msteps_per_sec: f64,
    /// Random transactions issued by live lanes.
    pub mem_txns: f64,
    /// Warp-rounds executed (the lockstep cost driver).
    pub warp_rounds: u64,
    /// Mean fraction of live lanes per warp-round (divergence measure).
    pub live_lane_fraction: f64,
    /// Coefficient of variation of visited-vertex degrees.
    pub visited_degree_cv: f64,
    /// Which ceiling bound the run.
    pub bound: GpuBound,
}

/// The binding performance ceiling of a GPU run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuBound {
    /// Random-access bandwidth (possibly raggedness-degraded).
    Memory,
    /// Warp-lockstep lane issue.
    LockstepIssue,
    /// Kernel launch rounds.
    Launch,
}

/// The gSampler execution model.
///
/// # Example
///
/// ```
/// use grw_algo::{PreparedGraph, QuerySet, WalkSpec};
/// use grw_baselines::GSampler;
/// use grw_graph::generators::RmatConfig;
///
/// let g = RmatConfig::balanced(10, 8).seed(1).generate();
/// let spec = WalkSpec::urw(16);
/// let p = PreparedGraph::new(g, &spec).unwrap();
/// let qs = QuerySet::random(p.graph().vertex_count(), 256, 0);
/// let r = GSampler::new().run(&p, &spec, qs.queries());
/// assert_eq!(r.paths.len(), 256);
/// assert!(r.msteps_per_sec > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GSampler {
    /// Hardware constants.
    pub spec: GpuSpec,
    /// RNG seed for the functional walks.
    pub seed: u64,
}

impl GSampler {
    /// Creates the model on an H100.
    pub fn new() -> Self {
        Self {
            spec: GpuSpec::h100(),
            seed: 0x600D,
        }
    }

    /// Overrides the hardware spec.
    pub fn spec(mut self, spec: GpuSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Overrides the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Per-lane instruction weight of one step.
    fn lane_cost(spec: &WalkSpec) -> f64 {
        match spec {
            WalkSpec::Urw { .. } | WalkSpec::Ppr { .. } => 1.0,
            // Alias sampling doubles the PRNs and instruction count.
            WalkSpec::DeepWalk { .. } => 2.0,
            WalkSpec::Node2Vec { .. } | WalkSpec::MetaPath { .. } => 1.2,
        }
    }

    /// Streaming adapter over the native super-batched execution: queries
    /// buffered since the last poll run as one GPU batch (super-batching
    /// *is* gSampler's performance signature, so the adapter preserves it).
    pub fn backend<'a>(
        &self,
        prepared: &'a PreparedGraph,
        spec: &WalkSpec,
    ) -> grw_algo::BatchFnBackend<impl FnMut(&[WalkQuery]) -> Vec<grw_algo::WalkPath> + 'a> {
        let model = *self;
        let spec = spec.clone();
        grw_algo::BatchFnBackend::new(move |queries: &[WalkQuery]| {
            model.run(prepared, &spec, queries).paths
        })
    }

    /// Runs the model.
    pub fn run(
        &self,
        prepared: &PreparedGraph,
        spec: &WalkSpec,
        queries: &[WalkQuery],
    ) -> GpuReport {
        let graph = prepared.graph();
        // Functional replay, recording the per-hop transaction cost each
        // lane would issue.
        let mut paths = Vec::with_capacity(queries.len());
        let mut hop_txns: Vec<Vec<f64>> = Vec::with_capacity(queries.len());
        let mut degree_sum = 0.0f64;
        let mut degree_sq = 0.0f64;
        let mut visits = 0u64;
        for q in queries {
            let mut rng =
                Xoshiro256StarStar::new(SplitMix64::mix(self.seed ^ q.id.wrapping_mul(0x9E37)));
            let mut vertices = vec![q.start];
            let mut txns = Vec::new();
            let mut cur = q.start;
            let mut prev: Option<VertexId> = None;
            let mut hop = 0u32;
            while let grw_algo::StepDecision::Advance { next, outcome } =
                prepared.next_step(spec, cur, prev, hop, &mut rng)
            {
                let d = f64::from(graph.degree(cur));
                degree_sum += d;
                degree_sq += d * d;
                visits += 1;
                // RP read + final column read, plus sampling costs.
                // Membership probes hit the previous hop's list,
                // which both platforms keep close (GPU cache / FPGA
                // on-chip buffer): no memory charge.
                let extra = match spec {
                    WalkSpec::DeepWalk { .. } => 1.0, // alias entry
                    WalkSpec::Node2Vec { .. } => {
                        f64::from(outcome.uniform_trials - 1)
                            + f64::from(outcome.scanned.div_ceil(8))
                    }
                    WalkSpec::MetaPath { .. } => f64::from(outcome.scanned.div_ceil(8)),
                    _ => 0.0,
                };
                txns.push(2.0 + extra);
                vertices.push(next);
                prev = Some(cur);
                cur = next;
                hop += 1;
            }
            paths.push(WalkPath::new(q.id, vertices));
            hop_txns.push(txns);
        }

        // Warp aggregation.
        let mut warp_rounds = 0u64;
        let mut live_lanes = 0u64;
        let mut mem_txns = 0.0f64;
        let mut global_rounds = 0u64;
        for warp in hop_txns.chunks(WARP) {
            let rounds = warp.iter().map(Vec::len).max().unwrap_or(0) as u64;
            global_rounds = global_rounds.max(rounds);
            warp_rounds += rounds;
            for r in 0..rounds as usize {
                for lane in warp {
                    if let Some(&t) = lane.get(r) {
                        live_lanes += 1;
                        mem_txns += t;
                    }
                }
            }
        }
        let steps: u64 = paths.iter().map(WalkPath::steps).sum();
        debug_assert_eq!(steps, live_lanes);

        // Raggedness: CV of visited out-degrees.
        let cv = if visits == 0 {
            0.0
        } else {
            let mean = degree_sum / visits as f64;
            let var = (degree_sq / visits as f64 - mean * mean).max(0.0);
            if mean == 0.0 {
                0.0
            } else {
                var.sqrt() / mean
            }
        };

        let s = &self.spec;
        // Raggedness degrades the vectorized gather kernels quadratically:
        // evenly distributed accesses (cv ≈ 0.2) keep near-full efficiency,
        // power-law degree streams (cv > 1) collapse toward scalar gathers.
        let mem_rate = s.random_mtps * 1e6 / (1.0 + s.raggedness_kappa * cv * cv);
        let t_mem = mem_txns / mem_rate;
        let lane_units = warp_rounds as f64 * WARP as f64 * Self::lane_cost(spec);
        let t_issue = lane_units / (s.lane_rate_msteps * 1e6);
        let t_launch = global_rounds as f64 * s.launch_overhead_us * 1e-6;
        let (time_s, bound) = [
            (t_mem, GpuBound::Memory),
            (t_issue, GpuBound::LockstepIssue),
            (t_launch, GpuBound::Launch),
        ]
        .into_iter()
        .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"))
        .expect("non-empty");

        let msteps = if time_s > 0.0 {
            steps as f64 / time_s / 1e6
        } else {
            0.0
        };
        GpuReport {
            paths,
            steps,
            time_ms: time_s * 1e3,
            msteps_per_sec: msteps,
            mem_txns,
            warp_rounds,
            live_lane_fraction: if warp_rounds == 0 {
                0.0
            } else {
                live_lanes as f64 / (warp_rounds as f64 * WARP as f64)
            },
            visited_degree_cv: cv,
            bound,
        }
    }
}

impl Default for GSampler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grw_algo::QuerySet;
    use grw_graph::generators::{Dataset, RmatConfig, ScaleFactor};

    fn run(spec: &WalkSpec, g: grw_graph::CsrGraph, q: usize) -> GpuReport {
        let p = PreparedGraph::new(g, spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), q, 3);
        GSampler::new().run(&p, spec, qs.queries())
    }

    #[test]
    fn balanced_rmat_is_memory_bound_near_peak() {
        let spec = WalkSpec::urw(40);
        let g = RmatConfig::balanced(12, 16).seed(1).generate();
        let r = run(&spec, g, 2048);
        assert_eq!(r.bound, GpuBound::Memory);
        assert!(
            r.live_lane_fraction > 0.95,
            "balanced walks should keep warps full, got {}",
            r.live_lane_fraction
        );
        // Near the 19 Gtxn/s ceiling at 2 txns/step → multi-GStep/s.
        assert!(
            r.msteps_per_sec > 4000.0,
            "balanced RMAT should run near peak, got {}",
            r.msteps_per_sec
        );
    }

    #[test]
    fn graph500_skew_collapses_throughput() {
        let spec = WalkSpec::urw(40);
        let balanced = run(&spec, RmatConfig::balanced(12, 16).seed(1).generate(), 2048);
        let skewed = run(&spec, RmatConfig::graph500(12, 16).seed(1).generate(), 2048);
        let drop = balanced.msteps_per_sec / skewed.msteps_per_sec;
        assert!(
            drop > 4.0,
            "Graph500 skew should collapse the GPU by an order, got {drop:.1}x"
        );
        assert!(
            skewed.live_lane_fraction < 0.7,
            "dead ends must divert warps, live fraction {}",
            skewed.live_lane_fraction
        );
        assert!(skewed.live_lane_fraction < balanced.live_lane_fraction);
    }

    #[test]
    fn alias_sampling_taxes_the_gpu() {
        let g = Dataset::WebGoogle.generate_weighted(ScaleFactor::Tiny);
        let urw = run(&WalkSpec::urw(40), g.clone(), 1024);
        let dw = run(&WalkSpec::deepwalk(40), g, 1024);
        assert!(
            dw.msteps_per_sec < urw.msteps_per_sec,
            "DeepWalk ({}) must be slower than URW ({}) on the GPU",
            dw.msteps_per_sec,
            urw.msteps_per_sec
        );
    }

    #[test]
    fn ppr_wastes_lanes() {
        let g = Dataset::LiveJournal.generate(ScaleFactor::Tiny);
        let urw = run(&WalkSpec::urw(80), g.clone(), 1024);
        let ppr = run(&WalkSpec::ppr(80), g, 1024);
        assert!(ppr.live_lane_fraction < 0.4, "{}", ppr.live_lane_fraction);
        assert!(
            ppr.live_lane_fraction < urw.live_lane_fraction,
            "geometric PPR lengths must diverge warps"
        );
    }

    #[test]
    fn walks_are_valid_and_deterministic() {
        let g = Dataset::CitPatents.generate(ScaleFactor::Tiny);
        let spec = WalkSpec::urw(16);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), 128, 1);
        let a = GSampler::new().run(&p, &spec, qs.queries());
        let b = GSampler::new().run(&p, &spec, qs.queries());
        assert_eq!(a.paths, b.paths);
        for w in &a.paths {
            for pair in w.vertices.windows(2) {
                assert!(p.graph().has_edge(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn launch_overhead_can_bind_tiny_runs() {
        let g = RmatConfig::balanced(8, 8).seed(0).generate();
        let spec = WalkSpec::urw(20);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), 32, 0);
        let mut model = GSampler::new();
        model.spec.launch_overhead_us = 1000.0;
        let r = model.run(&p, &spec, qs.queries());
        assert_eq!(r.bound, GpuBound::Launch);
    }
}
