//! LightRW model (Tan et al., SIGMOD'23) — the Fig. 8c/8d baseline.
//!
//! LightRW pipelines its memory path well (it is the strongest FPGA
//! baseline: RidgeWalker wins by only 1.1–1.7×), but batches queries in a
//! ring buffer and issues every step in a predetermined order: when a walk
//! terminates early its reserved slots stay empty until the whole batch
//! drains (§III-B Observation #2 — bubble ratios up to 37%). The model is
//! therefore the shared engine with asynchronous memory but static
//! bulk-synchronous batching.

use grw_algo::{PreparedGraph, WalkQuery, WalkSpec};
use grw_sim::FpgaPlatform;
use ridgewalker::{Accelerator, AcceleratorConfig, MemoryMode, RunReport, ScheduleMode};

/// The LightRW accelerator model.
///
/// # Example
///
/// ```
/// use grw_algo::{Node2VecMethod, PreparedGraph, QuerySet, WalkSpec};
/// use grw_baselines::LightRw;
/// use grw_graph::generators::{Dataset, ScaleFactor};
///
/// let g = Dataset::WebGoogle.generate_weighted(ScaleFactor::Tiny);
/// let spec = WalkSpec::node2vec(8, Node2VecMethod::Reservoir);
/// let p = PreparedGraph::new(g, &spec).unwrap();
/// let qs = QuerySet::random(p.graph().vertex_count(), 32, 0);
/// let report = LightRw::new().run(&p, &spec, qs.queries());
/// assert_eq!(report.paths.len(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LightRw {
    /// Ring-buffer capacity (walkers per batch).
    pub ring_capacity: usize,
    /// Target platform (the paper compares on the Alveo U250).
    pub platform: FpgaPlatform,
}

impl LightRw {
    /// Creates the default model (U250, 128-walker ring).
    pub fn new() -> Self {
        Self {
            ring_capacity: 128,
            platform: FpgaPlatform::AlveoU250,
        }
    }

    /// Overrides the ring capacity.
    pub fn ring_capacity(mut self, walkers: usize) -> Self {
        assert!(walkers > 0, "ring must hold at least one walker");
        self.ring_capacity = walkers;
        self
    }

    /// Overrides the platform.
    pub fn platform(mut self, platform: FpgaPlatform) -> Self {
        self.platform = platform;
        self
    }

    /// The underlying engine configuration.
    pub fn config(&self) -> AcceleratorConfig {
        AcceleratorConfig::new()
            .platform(self.platform)
            .schedule(ScheduleMode::StaticBatched)
            .memory(MemoryMode::Asynchronous)
            .batch_size(self.ring_capacity)
    }

    /// Runs the model.
    pub fn run(
        &self,
        prepared: &PreparedGraph,
        spec: &WalkSpec,
        queries: &[WalkQuery],
    ) -> RunReport {
        Accelerator::new(self.config()).run(prepared, spec, queries)
    }

    /// Opens a streaming backend (one micro-batch per poll) over this
    /// model's engine configuration.
    pub fn backend<P: std::borrow::Borrow<PreparedGraph>>(
        &self,
        prepared: P,
        spec: &WalkSpec,
    ) -> ridgewalker::AcceleratorBackend<P> {
        Accelerator::new(self.config()).backend(prepared, spec)
    }
}

impl Default for LightRw {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grw_algo::{Node2VecMethod, QuerySet};
    use grw_graph::generators::{Dataset, ScaleFactor};

    #[test]
    fn ridgewalker_wins_but_modestly_on_node2vec() {
        // Fig. 8c: 1.1–1.5× — LightRW is a strong baseline. WG (directed,
        // early-terminating) is where dynamic scheduling has its edge; LJ
        // (undirected) is the paper's own weakest case at 1.1×.
        let g = Dataset::WebGoogle.generate_weighted(ScaleFactor::Tiny);
        let spec = WalkSpec::node2vec(20, Node2VecMethod::Reservoir);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), 2_048, 5);
        let light = LightRw::new().run(&p, &spec, qs.queries());
        let ridge = Accelerator::new(AcceleratorConfig::new().platform(FpgaPlatform::AlveoU250))
            .run(&p, &spec, qs.queries());
        let speedup = ridge.speedup_over(&light);
        assert!(
            speedup > 1.05 && speedup < 4.0,
            "Node2Vec speedup over LightRW should be modest, got {speedup:.2}x"
        );
    }

    #[test]
    fn metapath_gap_exceeds_node2vec_gap() {
        // Fig. 8d vs 8c: early termination makes MetaPath the better
        // showcase for dynamic scheduling.
        let g = Dataset::WebGoogle.generate_typed(ScaleFactor::Tiny, 3);
        let qs = QuerySet::random(g.vertex_count(), 512, 5);

        let n2v = WalkSpec::node2vec(20, Node2VecMethod::Reservoir);
        let pn = PreparedGraph::new(g.clone(), &n2v).unwrap();
        let n2v_ratio =
            Accelerator::new(AcceleratorConfig::new().platform(FpgaPlatform::AlveoU250))
                .run(&pn, &n2v, qs.queries())
                .speedup_over(&LightRw::new().run(&pn, &n2v, qs.queries()));

        let mp = WalkSpec::metapath(20);
        let pm = PreparedGraph::new(g, &mp).unwrap();
        let mp_ratio = Accelerator::new(AcceleratorConfig::new().platform(FpgaPlatform::AlveoU250))
            .run(&pm, &mp, qs.queries())
            .speedup_over(&LightRw::new().run(&pm, &mp, qs.queries()));

        assert!(
            mp_ratio > n2v_ratio * 0.95,
            "MetaPath ratio {mp_ratio:.2} should not trail Node2Vec ratio {n2v_ratio:.2}"
        );
    }

    #[test]
    fn batched_execution_leaves_bubbles() {
        let g = Dataset::CitPatents.generate_weighted(ScaleFactor::Tiny);
        let spec = WalkSpec::node2vec(20, Node2VecMethod::Reservoir);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), 512, 2);
        let light = LightRw::new().run(&p, &spec, qs.queries());
        assert!(
            light.bubble_ratio > 0.02,
            "ring-buffer batching should starve pipelines, ratio {}",
            light.bubble_ratio
        );
    }

    #[test]
    #[should_panic(expected = "at least one walker")]
    fn zero_ring_panics() {
        let _ = LightRw::new().ring_capacity(0);
    }
}
