//! FastRW model (Gao et al., DATE'23) — the Fig. 8a baseline.
//!
//! FastRW's signature mechanisms, per §III-B of the RidgeWalker paper:
//!
//! 1. **Frequency-based on-chip caching** of row-pointer entries. Works
//!    while the hot set fits BRAM/URAM; on large graphs the cache thrashes
//!    and every miss is an in-order pointer chase.
//! 2. **CPU-pre-generated random numbers** streamed from HBM, spending
//!    memory bandwidth that could serve graph data (two 64-bit words per
//!    DeepWalk step: slot pick + alias coin).
//! 3. **Static dataflow scheduling** in bulk-synchronous batches.
//!
//! The model is the shared cycle-level engine with exactly those knobs:
//! a degree-ranked RP cache, an RNG stream tax, a tiny in-order RA window,
//! and static batching.

use grw_algo::{PreparedGraph, WalkQuery, WalkSpec};
use grw_sim::FpgaPlatform;
use ridgewalker::{Accelerator, AcceleratorConfig, MemoryMode, RunReport, ScheduleMode};

/// The FastRW accelerator model.
///
/// # Example
///
/// ```
/// use grw_algo::{PreparedGraph, QuerySet, WalkSpec};
/// use grw_baselines::FastRw;
/// use grw_graph::generators::{Dataset, ScaleFactor};
///
/// let g = Dataset::WebGoogle.generate_weighted(ScaleFactor::Tiny);
/// let spec = WalkSpec::deepwalk(8);
/// let p = PreparedGraph::new(g, &spec).unwrap();
/// let qs = QuerySet::random(p.graph().vertex_count(), 64, 0);
/// let report = FastRw::new().run(&p, &spec, qs.queries());
/// assert_eq!(report.paths.len(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastRw {
    /// On-chip RP cache capacity, in entries.
    pub cache_entries: usize,
    /// Pipelines instantiated by the design.
    pub pipelines: u32,
    /// Target platform (the paper compares on the Alveo U50).
    pub platform: FpgaPlatform,
}

impl FastRw {
    /// U50-scale on-chip memory divided by the 256-bit DeepWalk RP entry,
    /// shrunk by the same ~1/16 factor as the standard-scale dataset
    /// stand-ins (`DESIGN.md`): ~28 MB / 32 B / 16.
    pub const DEFAULT_CACHE_ENTRIES: usize = 56_000;

    /// Creates the default model.
    pub fn new() -> Self {
        Self {
            cache_entries: Self::DEFAULT_CACHE_ENTRIES,
            pipelines: 16,
            platform: FpgaPlatform::AlveoU50,
        }
    }

    /// The cache capacity consistent with a dataset scale: the on-chip
    /// memory shrinks by the same factor as the graphs so cache-residency
    /// relations (WG mostly resident, LJ thrashing) survive scaling.
    pub fn cache_for(scale: grw_graph::generators::ScaleFactor) -> usize {
        use grw_graph::generators::ScaleFactor;
        match scale {
            ScaleFactor::Standard => Self::DEFAULT_CACHE_ENTRIES,
            ScaleFactor::Small => Self::DEFAULT_CACHE_ENTRIES / 8,
            ScaleFactor::Tiny => Self::DEFAULT_CACHE_ENTRIES / 64,
        }
    }

    /// Creates the model sized for a dataset scale.
    pub fn for_scale(scale: grw_graph::generators::ScaleFactor) -> Self {
        Self::new().cache_entries(Self::cache_for(scale))
    }

    /// Overrides the cache capacity.
    pub fn cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries;
        self
    }

    /// Overrides the platform.
    pub fn platform(mut self, platform: FpgaPlatform) -> Self {
        self.platform = platform;
        self
    }

    /// The underlying engine configuration.
    pub fn config(&self, spec: &WalkSpec) -> AcceleratorConfig {
        // Random numbers consumed per step: one for uniform sampling, two
        // for alias sampling (slot + coin).
        let rng_reads = match spec {
            WalkSpec::DeepWalk { .. } => 2,
            _ => 1,
        };
        AcceleratorConfig::new()
            .platform(self.platform)
            .pipelines(self.pipelines)
            .schedule(ScheduleMode::StaticBatched)
            .memory(MemoryMode::Asynchronous)
            // FastRW's dataflow holds a small pool of concurrent walkers.
            .batch_size(16 * self.pipelines as usize)
            // In-order pointer chases: a cache miss stalls the dataflow.
            .ra_outstanding(2)
            // The column stream is well pipelined in FastRW's dataflow.
            .ca_outstanding(32)
            .rp_cache(self.cache_entries)
            .rng_stream_tax(rng_reads)
    }

    /// Runs the model.
    pub fn run(
        &self,
        prepared: &PreparedGraph,
        spec: &WalkSpec,
        queries: &[WalkQuery],
    ) -> RunReport {
        Accelerator::new(self.config(spec)).run(prepared, spec, queries)
    }

    /// Opens a streaming backend (one micro-batch per poll) over this
    /// model's engine configuration.
    pub fn backend<P: std::borrow::Borrow<PreparedGraph>>(
        &self,
        prepared: P,
        spec: &WalkSpec,
    ) -> ridgewalker::AcceleratorBackend<P> {
        Accelerator::new(self.config(spec)).backend(prepared, spec)
    }
}

impl Default for FastRw {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grw_algo::QuerySet;
    use grw_graph::generators::{Dataset, ScaleFactor};
    use ridgewalker::AcceleratorConfig as RwConfig;

    fn deepwalk_on(d: Dataset, cache: usize) -> (f64, f64) {
        let g = d.generate_weighted(ScaleFactor::Tiny);
        let spec = WalkSpec::deepwalk(24);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), 384, 7);
        let fast = FastRw::new()
            .cache_entries(cache)
            .run(&p, &spec, qs.queries());
        let ridge = ridgewalker::Accelerator::new(RwConfig::new().platform(FpgaPlatform::AlveoU50))
            .run(&p, &spec, qs.queries());
        (fast.msteps_per_sec, ridge.msteps_per_sec)
    }

    #[test]
    fn ridgewalker_always_wins() {
        let (fast, ridge) = deepwalk_on(Dataset::WebGoogle, FastRw::DEFAULT_CACHE_ENTRIES);
        assert!(ridge > fast, "ridge {ridge} vs fastrw {fast}");
    }

    #[test]
    fn cache_thrash_collapses_fastrw() {
        // Fig. 3a / Fig. 8a: cache-resident (WG) is workable, an uncachable
        // graph collapses, and the speedup widens with graph size.
        let g = Dataset::WebGoogle.generate_weighted(ScaleFactor::Tiny);
        let spec = WalkSpec::deepwalk(24);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), 2_048, 7);
        let resident = FastRw::new()
            .cache_entries(p.graph().vertex_count()) // everything fits
            .run(&p, &spec, qs.queries());
        let thrashing = FastRw::new().cache_entries(16).run(&p, &spec, qs.queries());
        let ratio = resident.msteps_per_sec / thrashing.msteps_per_sec;
        assert!(
            ratio > 2.0,
            "cache residency should dominate FastRW performance, got {ratio:.2}x"
        );
    }

    #[test]
    fn rng_stream_tax_costs_bandwidth() {
        let g = Dataset::WebGoogle.generate_weighted(ScaleFactor::Tiny);
        let spec = WalkSpec::deepwalk(16);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), 256, 3);
        let base = FastRw::new().config(&spec);
        let with_tax = Accelerator::new(base).run(&p, &spec, qs.queries());
        let without_tax = Accelerator::new(base.rng_stream_tax(0)).run(&p, &spec, qs.queries());
        assert!(
            without_tax.bytes_moved < with_tax.bytes_moved,
            "the RNG stream must show up as extra memory traffic"
        );
    }

    #[test]
    fn config_varies_rng_tax_by_algorithm() {
        let f = FastRw::new();
        assert_eq!(f.config(&WalkSpec::deepwalk(80)).rng_seq_reads_per_step, 2);
        assert_eq!(f.config(&WalkSpec::urw(80)).rng_seq_reads_per_step, 1);
    }
}
