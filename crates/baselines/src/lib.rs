//! Behavioural models of the systems RidgeWalker is evaluated against.
//!
//! None of the baselines ship usable artifacts for this reproduction
//! (FastRW's code is not public; gSampler needs H100s), so each is rebuilt
//! as a model that captures the mechanisms the paper identifies as its
//! performance signature — see `DESIGN.md` for the substitution table:
//!
//! * [`FastRw`] — degree-ranked on-chip RP cache, CPU-pre-generated random
//!   numbers streamed from HBM, in-order pointer chases, static batches
//!   (§III-B Observation #1, Fig. 3a, Fig. 8a).
//! * [`LightRw`] — well-pipelined memory path but ring-buffer batched
//!   scheduling: early-terminated walks leave their slots empty until the
//!   batch drains (§III-B Observation #2, Fig. 8c/8d).
//! * [`SuEtAl`] — HBM-enabled sampler with a plain blocking AXI memory
//!   path and static scheduling (Fig. 8b).
//! * [`gpu::GSampler`] — warp-lockstep SIMT execution with super-batching:
//!   memory-bandwidth, issue and ragged-access-serialization ceilings
//!   (Fig. 9, Fig. 10).
//!
//! The three FPGA baselines run on the *same* cycle-level engine and
//! memory model as RidgeWalker itself (`ridgewalker::Accelerator` with
//! baseline knobs), so every comparison shares one notion of time.

pub mod gpu;

mod fastrw;
mod lightrw;
mod su;

pub use fastrw::FastRw;
pub use gpu::{GSampler, GpuReport, GpuSpec};
pub use lightrw::LightRw;
pub use su::SuEtAl;
