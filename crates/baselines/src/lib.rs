//! Behavioural models of the systems RidgeWalker is evaluated against.
//!
//! None of the baselines ship usable artifacts for this reproduction
//! (FastRW's code is not public; gSampler needs H100s), so each is rebuilt
//! as a model that captures the mechanisms the paper identifies as its
//! performance signature — see `DESIGN.md` for the substitution table:
//!
//! * [`FastRw`] — degree-ranked on-chip RP cache, CPU-pre-generated random
//!   numbers streamed from HBM, in-order pointer chases, static batches
//!   (§III-B Observation #1, Fig. 3a, Fig. 8a).
//! * [`LightRw`] — well-pipelined memory path but ring-buffer batched
//!   scheduling: early-terminated walks leave their slots empty until the
//!   batch drains (§III-B Observation #2, Fig. 8c/8d).
//! * [`SuEtAl`] — HBM-enabled sampler with a plain blocking AXI memory
//!   path and static scheduling (Fig. 8b).
//! * [`gpu::GSampler`] — warp-lockstep SIMT execution with super-batching:
//!   memory-bandwidth, issue and ragged-access-serialization ceilings
//!   (Fig. 9, Fig. 10).
//!
//! The three FPGA baselines run on the *same* cycle-level engine and
//! memory model as RidgeWalker itself (`ridgewalker::Accelerator` with
//! baseline knobs), so every comparison shares one notion of time.

pub mod gpu;

mod fastrw;
mod lightrw;
mod su;

pub use fastrw::FastRw;
pub use gpu::{GSampler, GpuReport, GpuSpec};
pub use lightrw::LightRw;
pub use su::SuEtAl;

#[cfg(test)]
mod backend_tests {
    use super::*;
    use grw_algo::{run_streamed, PreparedGraph, QuerySet, WalkSpec};
    use grw_graph::generators::{Dataset, ScaleFactor};

    /// Every baseline's streaming backend reproduces its batch `run`
    /// exactly when fed the same queries as one micro-batch.
    #[test]
    fn streaming_backends_match_batch_run() {
        let g = Dataset::WebGoogle.generate_weighted(ScaleFactor::Tiny);
        let spec = WalkSpec::deepwalk(10);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), 96, 4);

        let fast = FastRw::new();
        assert_eq!(
            fast.run(&p, &spec, qs.queries()).paths,
            run_streamed(&mut fast.backend(&p, &spec), qs.queries())
        );
        let light = LightRw::new();
        assert_eq!(
            light.run(&p, &spec, qs.queries()).paths,
            run_streamed(&mut light.backend(&p, &spec), qs.queries())
        );
        let su = SuEtAl::new();
        assert_eq!(
            su.run(&p, &spec, qs.queries()).paths,
            run_streamed(&mut su.backend(&p, &spec), qs.queries())
        );
        let gpu = GSampler::new();
        assert_eq!(
            gpu.run(&p, &spec, qs.queries()).paths,
            run_streamed(&mut gpu.backend(&p, &spec), qs.queries())
        );
    }
}
