//! Su et al. model (FPL'21) — the Fig. 8b baseline.
//!
//! An early HBM-enabled FPGA sampler: walkers are statically distributed
//! over channels and every access goes through a plain AXI master, so
//! pointer-chasing latency is barely hidden. The RidgeWalker paper
//! attributes its 9.2–9.9× win to the memory subsystem (§VIII-B); the
//! model is therefore the shared engine with *blocking* memory and static
//! scheduling on the same board (Alveo U280).

use grw_algo::{PreparedGraph, WalkQuery, WalkSpec};
use grw_sim::FpgaPlatform;
use ridgewalker::{Accelerator, AcceleratorConfig, MemoryMode, RunReport, ScheduleMode};

/// The Su et al. accelerator model.
///
/// # Example
///
/// ```
/// use grw_algo::{PreparedGraph, QuerySet, WalkSpec};
/// use grw_baselines::SuEtAl;
/// use grw_graph::generators::{Dataset, ScaleFactor};
///
/// let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
/// let spec = WalkSpec::urw(8);
/// let p = PreparedGraph::new(g, &spec).unwrap();
/// let qs = QuerySet::random(p.graph().vertex_count(), 32, 0);
/// let report = SuEtAl::new().run(&p, &spec, qs.queries());
/// assert_eq!(report.paths.len(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuEtAl {
    /// Target platform.
    pub platform: FpgaPlatform,
}

impl SuEtAl {
    /// Creates the default model (Alveo U280).
    pub fn new() -> Self {
        Self {
            platform: FpgaPlatform::AlveoU280,
        }
    }

    /// The underlying engine configuration.
    pub fn config(&self) -> AcceleratorConfig {
        AcceleratorConfig::new()
            .platform(self.platform)
            .schedule(ScheduleMode::StaticBatched)
            .memory(MemoryMode::Blocking)
            // An early design with a small static walker pool per channel.
            .batch_size(16 * self.platform.spec().pipelines() as usize)
    }

    /// Runs the model.
    pub fn run(
        &self,
        prepared: &PreparedGraph,
        spec: &WalkSpec,
        queries: &[WalkQuery],
    ) -> RunReport {
        Accelerator::new(self.config()).run(prepared, spec, queries)
    }

    /// Opens a streaming backend (one micro-batch per poll) over this
    /// model's engine configuration.
    pub fn backend<P: std::borrow::Borrow<PreparedGraph>>(
        &self,
        prepared: P,
        spec: &WalkSpec,
    ) -> ridgewalker::AcceleratorBackend<P> {
        Accelerator::new(self.config()).backend(prepared, spec)
    }
}

impl Default for SuEtAl {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grw_algo::QuerySet;
    use grw_graph::generators::{Dataset, ScaleFactor};

    #[test]
    fn ridgewalker_wins_by_memory_subsystem_margin() {
        // Fig. 8b: 9.2× (PPR) and 9.9× (URW) on WG.
        let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
        for spec in [WalkSpec::urw(24), WalkSpec::ppr(24)] {
            // PPR walks are short; a continuous stream needs more queries
            // to reach the throughput-bound regime.
            let n = if matches!(spec, WalkSpec::Ppr { .. }) {
                16_384
            } else {
                4_096
            };
            let p = PreparedGraph::new(g.clone(), &spec).unwrap();
            let qs = QuerySet::random(p.graph().vertex_count(), n, 1);
            let su = SuEtAl::new().run(&p, &spec, qs.queries());
            let ridge = Accelerator::new(
                AcceleratorConfig::new().platform(FpgaPlatform::AlveoU280),
            )
            .run(&p, &spec, qs.queries());
            let speedup = ridge.speedup_over(&su);
            assert!(
                speedup > 4.0,
                "{spec}: expected a large memory-subsystem win, got {speedup:.2}x"
            );
        }
    }

    #[test]
    fn blocking_memory_shows_low_bandwidth_utilization() {
        let g = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
        let spec = WalkSpec::urw(24);
        let p = PreparedGraph::new(g, &spec).unwrap();
        let qs = QuerySet::random(p.graph().vertex_count(), 256, 1);
        let su = SuEtAl::new().run(&p, &spec, qs.queries());
        assert!(
            su.bandwidth_utilization < 0.35,
            "blocking design should leave bandwidth idle, got {:.2}",
            su.bandwidth_utilization
        );
    }
}
