//! Node2Vec corpus generation for GNN/embedding training — the
//! graph-learning workload from the paper's introduction — comparing the
//! simulated RidgeWalker against the LightRW baseline model.
//!
//! ```text
//! cargo run --release --example gnn_corpus
//! ```

use ridgewalker_suite::accel::{Accelerator, AcceleratorConfig};
use ridgewalker_suite::algo::{Node2VecMethod, PreparedGraph, QuerySet, WalkSpec};
use ridgewalker_suite::baselines::LightRw;
use ridgewalker_suite::graph::generators::{Dataset, ScaleFactor};
use ridgewalker_suite::graph::GraphStats;
use ridgewalker_suite::sim::FpgaPlatform;

fn main() {
    // The LiveJournal stand-in: the social graph DeepWalk/Node2Vec papers
    // train embeddings on.
    let graph = Dataset::LiveJournal.generate_weighted(ScaleFactor::Tiny);
    let stats = GraphStats::compute(&graph);
    println!(
        "LJ stand-in: {} vertices, {} edges, max degree {}",
        stats.vertices, stats.edges, stats.max_degree
    );

    // Node2Vec with the paper's parameters p=2, q=0.5; one walk per vertex.
    let spec = WalkSpec::node2vec(40, Node2VecMethod::Reservoir);
    let prepared = PreparedGraph::new(graph, &spec).expect("weighted graph");
    let queries = QuerySet::one_per_vertex(prepared.graph().vertex_count());

    let ridge = Accelerator::new(AcceleratorConfig::new().platform(FpgaPlatform::AlveoU250)).run(
        &prepared,
        &spec,
        queries.queries(),
    );
    let light = LightRw::new().run(&prepared, &spec, queries.queries());

    let corpus_tokens: u64 = ridge.paths.iter().map(|p| p.vertices.len() as u64).sum();
    println!(
        "\ncorpus: {} walks, {corpus_tokens} tokens",
        ridge.paths.len()
    );
    println!(
        "sample walk from vertex 0: {:?}",
        &ridge.paths[0].vertices[..ridge.paths[0].vertices.len().min(12)]
    );
    println!("\nthroughput on the Alveo U250 model:");
    println!(
        "  RidgeWalker: {:>8.1} MStep/s (bubble ratio {:.1}%)",
        ridge.msteps_per_sec,
        100.0 * ridge.bubble_ratio
    );
    println!(
        "  LightRW:     {:>8.1} MStep/s (bubble ratio {:.1}%)",
        light.msteps_per_sec,
        100.0 * light.bubble_ratio
    );
    println!(
        "  speedup:     {:>8.2}x (paper Fig. 8c: 1.1-1.5x)",
        ridge.speedup_over(&light)
    );
}
