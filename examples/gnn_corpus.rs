//! Node2Vec corpus generation for GNN/embedding training — the
//! graph-learning workload from the paper's introduction — with the
//! corpus *streamed* out of the serving tier through a bounded
//! skip-gram sink instead of materialising every walk, plus the
//! RidgeWalker-vs-LightRW throughput comparison on the same workload.
//!
//! ```text
//! cargo run --release --example gnn_corpus
//! ```

use ridgewalker_suite::accel::{Accelerator, AcceleratorConfig};
use ridgewalker_suite::algo::{Node2VecMethod, PreparedGraph, QuerySet, WalkSpec};
use ridgewalker_suite::baselines::LightRw;
use ridgewalker_suite::graph::generators::{Dataset, ScaleFactor};
use ridgewalker_suite::graph::GraphStats;
use ridgewalker_suite::service::{accelerator_service, AccelShardMode, ServiceConfig, TenantId};
use ridgewalker_suite::sim::FpgaPlatform;
use ridgewalker_suite::sink::{CorpusSink, SkipGramPair, WalkSink};
use std::sync::Arc;

/// word2vec's usual skip-gram window.
const WINDOW: usize = 5;
/// Pair-buffer bound: the only corpus state resident at any moment.
const PAIR_BUFFER: usize = 32_768;

fn main() {
    // The LiveJournal stand-in: the social graph DeepWalk/Node2Vec papers
    // train embeddings on.
    let graph = Dataset::LiveJournal.generate_weighted(ScaleFactor::Tiny);
    let stats = GraphStats::compute(&graph);
    println!(
        "LJ stand-in: {} vertices, {} edges, max degree {}",
        stats.vertices, stats.edges, stats.max_degree
    );

    // Node2Vec with the paper's parameters p=2, q=0.5; one walk per vertex.
    let spec = WalkSpec::node2vec(40, Node2VecMethod::Reservoir);
    let prepared = Arc::new(PreparedGraph::new(graph, &spec).expect("weighted graph"));
    let queries = QuerySet::one_per_vertex(prepared.graph().vertex_count());

    // Stream the corpus: walks leave the accelerator shards, get windowed
    // into (center, context) pairs, and are dropped — the trainer-feed
    // stand-in below is the only place pairs accumulate. At no point does
    // the process hold the whole walk set.
    let accel_cfg = AcceleratorConfig::new().platform(FpgaPlatform::AlveoU250);
    let accel = Accelerator::new(accel_cfg);
    let mut service = accelerator_service(
        ServiceConfig::new(2).max_batch(256).max_delay_ticks(1),
        &accel,
        prepared.clone(),
        &spec,
        AccelShardMode::Incremental,
    );

    let mut pairs_emitted = 0u64;
    let mut sample: Vec<SkipGramPair> = Vec::new();
    let mut corpus = CorpusSink::new(WINDOW, PAIR_BUFFER, |window: &[SkipGramPair]| {
        // A real deployment hands the window to the embedding trainer (or
        // appends it to a corpus shard on disk); the example just counts.
        if pairs_emitted == 0 {
            sample.extend_from_slice(&window[..window.len().min(6)]);
        }
        pairs_emitted += window.len() as u64;
    });

    let accepted = service.submit(TenantId(0), queries.queries());
    assert_eq!(accepted, queries.queries().len(), "stream fits the buffers");
    // Tick the stream through so the spill depth is observable per tick
    // (drain_into always finishes with an empty spill), then drain the
    // tail and the final partial window.
    let mut delivered = 0;
    let mut peak_spilled = 0;
    while service.queue_depth() > 0 {
        delivered += service.tick_into(&mut corpus);
        peak_spilled = peak_spilled.max(service.spill_depth());
    }
    delivered += service.drain_into(&mut corpus);

    let walks = corpus.walks();
    let tokens = corpus.tokens();
    let peak_pairs = corpus.report().peak_buffered;
    drop(corpus);

    println!("\ncorpus (streamed, never materialised):");
    println!(
        "  {walks} walks, {tokens} tokens -> {pairs_emitted} skip-gram pairs (window {WINDOW})"
    );
    println!(
        "  resident while streaming: <= {peak_pairs} buffered pairs (cap {PAIR_BUFFER}) + peak {peak_spilled} spilled walks"
    );
    println!(
        "  sample pairs: {:?}",
        sample
            .iter()
            .map(|p| (p.center, p.context))
            .collect::<Vec<_>>()
    );
    assert_eq!(delivered, walks as usize, "every walk reached the sink");

    // Throughput comparison on the same workload (paper Fig. 8c): the
    // detached batch runs report cycle-accurate MStep/s for both designs.
    let ridge = Accelerator::new(accel_cfg).run(&prepared, &spec, queries.queries());
    let light = LightRw::new().run(&prepared, &spec, queries.queries());
    println!("\nthroughput on the Alveo U250 model:");
    println!(
        "  RidgeWalker: {:>8.1} MStep/s (bubble ratio {:.1}%)",
        ridge.msteps_per_sec,
        100.0 * ridge.bubble_ratio
    );
    println!(
        "  LightRW:     {:>8.1} MStep/s (bubble ratio {:.1}%)",
        light.msteps_per_sec,
        100.0 * light.bubble_ratio
    );
    println!(
        "  speedup:     {:>8.2}x (paper Fig. 8c: 1.1-1.5x)",
        ridge.speedup_over(&light)
    );
}
