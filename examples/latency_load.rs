//! Open-loop latency-vs-load curves across the workload matrix.
//!
//! For each workload (URW, PPR, DeepWalk, Node2Vec) the harness calibrates
//! the serving tier's saturation throughput μ̂, then replays open-loop
//! arrival streams (Poisson by default) at offered loads ρ·μ̂ across a
//! grid, against both accelerator shard modes, and writes one
//! `BENCH_load_<workload>.json` per workload for the CI perf-regression
//! gate. The incremental-mode curve is checked on the spot: mean latency
//! must be monotone non-decreasing in offered load, and the lowest-load
//! point must sit within 25% of the closed-form `M/M/n` prediction.
//!
//! ```text
//! cargo run --release --example latency_load                    # full, all workloads
//! LOAD_SMOKE=1 cargo run --release --example latency_load       # CI smoke, all workloads
//! LOAD_SMOKE=1 cargo run --release --example latency_load -- --workload urw
//! cargo run --release --example latency_load -- --arrival bursty
//! ```

use ridgewalker_suite::bench::load::{
    run_latency_load, ArrivalShape, LoadConfig, LoadWorkload, WorkloadLoadReport,
};

fn print_report(r: &WorkloadLoadReport) {
    println!(
        "== {} ({} arrivals) ==\n   saturation {:.4} queries/tick | solo latency {:.1} ticks | ~{} effective servers",
        r.workload, r.arrival, r.saturation_qpt, r.solo_latency_ticks, r.servers_estimate
    );
    println!(
        "   {:>5} {:>9} | {:>10} {:>8} {:>8} | {:>10} {:>10} | {:>9} {:>11}",
        "rho",
        "lam/tick",
        "mean(tick)",
        "p50",
        "p99",
        "pred M/M/n",
        "pred bulk",
        "depth",
        "cyc/query"
    );
    for p in &r.incremental {
        println!(
            "   {:>5.2} {:>9.4} | {:>10.1} {:>8} {:>8} | {:>10} {:>10} | {:>9.1} {:>11.1}",
            p.rho,
            p.lambda_per_tick,
            p.mean_latency_ticks,
            p.p50_latency_ticks,
            p.p99_latency_ticks,
            p.predicted_mmn_latency_ticks
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "-".into()),
            p.predicted_bulk_latency_ticks
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "-".into()),
            p.mean_queue_depth,
            p.cycles_per_query,
        );
    }
    let batch_low = &r.batch[0];
    let inc_low = &r.incremental[0];
    println!(
        "   batch-mode shards at lowest load: {:.1} vs {:.1} cycles/query ({:.2}x per-batch fill/drain cost)",
        batch_low.cycles_per_query,
        inc_low.cycles_per_query,
        batch_low.cycles_per_query / inc_low.cycles_per_query.max(1e-9),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = std::env::var_os("LOAD_SMOKE").is_some() || args.iter().any(|a| a == "--smoke");
    let mut cfg = if smoke {
        LoadConfig::smoke()
    } else {
        LoadConfig::full()
    };
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if let Some(shape) = flag("--arrival") {
        cfg.arrival = ArrivalShape::parse(&shape)
            .unwrap_or_else(|| panic!("unknown arrival shape '{shape}'"));
    }
    let workloads: Vec<LoadWorkload> = match flag("--workload") {
        Some(w) => {
            vec![LoadWorkload::parse(&w).unwrap_or_else(|| panic!("unknown workload '{w}'"))]
        }
        None => LoadWorkload::all().to_vec(),
    };

    println!(
        "latency-vs-load sweep ({} mode, {:?} grid, {} queries/point)\n",
        if smoke { "smoke" } else { "full" },
        cfg.load_grid,
        cfg.queries_per_point
    );

    for workload in workloads {
        let report = run_latency_load(workload, &cfg);
        print_report(&report);

        assert!(
            report.incremental_monotone(0.03),
            "{}: mean latency must be monotone non-decreasing in offered load: {:?}",
            report.workload,
            report
                .incremental
                .iter()
                .map(|p| p.mean_latency_ticks)
                .collect::<Vec<_>>()
        );
        let err = report
            .low_load_model_error()
            .expect("lowest grid point must be stable");
        assert!(
            err <= 0.25,
            "{}: lowest-load point off the M/M/n prediction by {:.1}%",
            report.workload,
            err * 100.0
        );
        println!(
            "   low-load check: measured within {:.1}% of M/M/n prediction; curve monotone\n",
            err * 100.0
        );

        let path = report.file_name();
        std::fs::write(&path, report.to_json()).expect("write bench json");
        println!("   wrote {path}\n");
    }
}
