//! Bounded-memory result streaming: sink delivery vs drain-to-`Vec`.
//!
//! Drives the identical open-loop DeepWalk stream through the serving
//! tier twice — once consumed the legacy way (every `CompletedWalk`
//! accumulates in the caller's `Vec`) and once streamed through a
//! bounded `CorpusSink` (`WalkService::tick_into`) — and reports the
//! peak resident completed-path count of each, plus the skip-gram corpus
//! the sink produced along the way. Writes `BENCH_sinks.json` for the CI
//! perf-regression gate.
//!
//! ```text
//! cargo run --release --example sink_stream                 # figure scale
//! SINKS_SMOKE=1 cargo run --release --example sink_stream   # CI smoke
//! ```

use ridgewalker_suite::bench::sinks::{run_sink_bench, SinkBenchConfig};

fn main() {
    let smoke =
        std::env::var_os("SINKS_SMOKE").is_some() || std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        SinkBenchConfig::smoke()
    } else {
        SinkBenchConfig::full()
    };

    println!(
        "sink-delivery bench ({} mode): {} queries, walk_len {}, window {}, {} pair buffer, {} spill\n",
        if smoke { "smoke" } else { "full" },
        cfg.queries,
        cfg.walk_len,
        cfg.corpus_window,
        cfg.corpus_capacity,
        cfg.spill_capacity
    );

    let report = run_sink_bench(&cfg);

    println!("resident completed paths (the unbounded-growth question):");
    println!(
        "  legacy drain-to-Vec: peak {:>8} (= every walk produced), final {:>8}",
        report.legacy.peak_resident_paths, report.legacy.final_resident_paths
    );
    println!(
        "  tick_into(CorpusSink): peak {:>8} (spill bound {}), final {:>8}",
        report.sink.peak_resident_paths, cfg.spill_capacity, report.sink.final_resident_paths
    );
    println!(
        "  residency improvement: {:.0}x\n",
        report.residency_ratio()
    );

    println!("corpus produced while streaming:");
    println!(
        "  {} walks -> {} tokens -> {} skip-gram pairs (window {})",
        report.sink.completed, report.corpus_tokens, report.pairs_emitted, cfg.corpus_window
    );
    println!(
        "  pair buffer: peak {} of {} | {} flushes downstream",
        report.peak_buffered_pairs, cfg.corpus_capacity, report.corpus_flushes
    );
    println!(
        "  delivery: {} accepted, {} backpressured, {} spilled, {} forced flushes",
        report.sink_accepted,
        report.sink_backpressured,
        report.sink_spilled,
        report.sink_forced_flushes
    );
    println!(
        "  throughput: {:.0} walks/s (sink) vs {:.0} walks/s (legacy), {} ticks\n",
        report.sink.walks_per_sec(),
        report.legacy.walks_per_sec(),
        report.sink.ticks
    );

    // The acceptance claims, checked on the spot.
    assert_eq!(
        report.legacy.peak_resident_paths, cfg.queries,
        "legacy residency grows linearly with walks completed"
    );
    assert!(
        report.sink.peak_resident_paths <= cfg.spill_capacity,
        "sink residency {} must stay within the spill bound {}",
        report.sink.peak_resident_paths,
        cfg.spill_capacity
    );
    assert_eq!(
        report.sink.completed, report.legacy.completed,
        "conservation: both consumption paths deliver every walk"
    );
    assert_eq!(
        report.sink.final_resident_paths, 0,
        "drain leaves nothing resident"
    );
    assert!(
        report.peak_buffered_pairs <= cfg.corpus_capacity,
        "the corpus pair buffer is bounded"
    );

    std::fs::write("BENCH_sinks.json", report.to_json()).expect("write bench json");
    println!("wrote BENCH_sinks.json");
}
