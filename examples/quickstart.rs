//! Quickstart: simulate RidgeWalker executing DeepWalk on a small graph,
//! through the streaming submit/poll/drain interface.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ridgewalker_suite::accel::{Accelerator, AcceleratorConfig};
use ridgewalker_suite::algo::{PreparedGraph, QuerySet, WalkBackend, WalkSpec};
use ridgewalker_suite::graph::{weights, CsrGraph};

fn main() {
    // A toy social network: two communities bridged by vertex 4.
    let edges = [
        (0, 1),
        (0, 2),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (5, 6),
        (6, 7),
        (7, 5),
        (4, 0),
    ];
    let graph = CsrGraph::from_edges(8, &edges, false).with_weights(weights::thunder_rw(42));
    println!(
        "graph: {} vertices, {} directed edges",
        graph.vertex_count(),
        graph.edge_count()
    );

    // DeepWalk: weighted first-order walks via alias sampling, length 10.
    let spec = WalkSpec::deepwalk(10);
    let prepared = PreparedGraph::new(graph, &spec).expect("weighted graph");

    // One walk per vertex, like an embedding corpus pass.
    let queries = QuerySet::one_per_vertex(prepared.graph().vertex_count());

    // Open a streaming backend on an accelerator with 4 asynchronous
    // pipelines: queries go in incrementally (here: two waves, as a
    // serving front-end would submit them), paths come back from poll().
    let config = AcceleratorConfig::new().pipelines(4).seed(7);
    let mut backend = Accelerator::new(config).backend(&prepared, &spec);

    let (first, second) = queries.queries().split_at(queries.len() / 2);
    let mut paths = Vec::new();
    assert_eq!(backend.submit(first), first.len());
    paths.extend(backend.poll()); // first micro-batch simulates here
    assert_eq!(backend.submit(second), second.len());
    paths.extend(backend.drain()); // second micro-batch + drain
    paths.sort_by_key(|p| p.query);

    println!("\nwalks:");
    for path in &paths {
        println!("  q{}: {:?}", path.query, path.vertices);
    }

    // The backend accumulates one continuous report across micro-batches.
    let report = backend.cumulative_report();
    println!(
        "\nsimulated {} steps in {} cycles over {} micro-batches -> {:.1} MStep/s at {:.0} MHz",
        report.steps,
        report.cycles,
        backend.batches_run(),
        report.msteps_per_sec,
        report.clock_mhz
    );
    println!(
        "pipeline utilization {:.1}%, bubble ratio {:.2}%",
        100.0 * report.pipeline_utilization,
        100.0 * report.bubble_ratio
    );
}
