//! Runtime-adaptive sampling kernels vs the legacy fixed kernels.
//!
//! Sweeps the (degree-skew × workload) grid of `grw_bench::sampling`:
//! two RMAT initiators (balanced vs the heavy-tailed Graph500 setting)
//! across URW, PPR, DeepWalk, rejection Node2Vec and weighted reservoir
//! Node2Vec, executing the identical query stream through a legacy and
//! an adaptive `PreparedGraph` and reporting steady-state wall-clock
//! MStep/s per arm plus the deterministic sampler counters (rejection
//! trials, reservoir scan words, alias builds, second-order cache
//! hits). Writes `BENCH_sampling.json` for the CI perf-regression gate.
//!
//! The run asserts the tentpole claim on the spot: on the skewed graph
//! the cached second-order alias kernel must execute weighted Node2Vec
//! at least 1.5x faster than the legacy reservoir sampler (full mode;
//! the smoke grid is too small for a stable wall-clock ratio and only
//! requires it not to lose).
//!
//! ```text
//! cargo run --release --example sampling                     # figure scale
//! SAMPLING_SMOKE=1 cargo run --release --example sampling    # CI smoke
//! ```

use ridgewalker_suite::bench::sampling::{run_sampling_bench, SamplingBenchConfig};

fn main() {
    let smoke =
        std::env::var_os("SAMPLING_SMOKE").is_some() || std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        SamplingBenchConfig::smoke()
    } else {
        SamplingBenchConfig::full()
    };

    println!(
        "sampling bench ({} mode): SC{}-{} RMAT, {} queries x {} max hops, {} repeats, {} MiB cache\n",
        if smoke { "smoke" } else { "full" },
        cfg.scale,
        cfg.edge_factor,
        cfg.queries,
        cfg.walk_len,
        cfg.repeats,
        cfg.cache_budget >> 20,
    );

    let report = run_sampling_bench(&cfg);

    let mut skew = "";
    for c in &report.cells {
        if c.skew != skew {
            println!(
                "== {} ==  {} vertices, {} edges, max degree {}",
                c.skew, c.vertices, c.edges, c.max_degree
            );
            println!(
                "   {:<9} {:>12} {:>12} {:>8} {:>12} {:>12} {:>12} {:>10} {:>9}",
                "workload",
                "legacy MS/s",
                "adapt MS/s",
                "speedup",
                "rej trials",
                "scan words",
                "alias builds",
                "hits",
                "hit%"
            );
            skew = &c.skew;
        }
        let s = &c.adaptive.sampling;
        println!(
            "   {:<9} {:>12.2} {:>12.2} {:>7.2}x {:>12} {:>12} {:>12} {:>10} {:>8.1}%",
            c.workload,
            c.legacy.msteps_wall,
            c.adaptive.msteps_wall,
            c.speedup,
            c.legacy.sampling.rejection_trials,
            c.legacy.sampling.scanned_words,
            s.alias_builds,
            s.cache_hits,
            s.cache_hit_ratio() * 100.0,
        );
    }

    let n2v = report
        .node2vec_skewed()
        .expect("the grid includes skewed weighted Node2Vec");
    println!(
        "\nskewed weighted Node2Vec: {:.2} -> {:.2} MStep/s ({:.2}x), cache hit ratio {:.1}%, min grid speedup {:.2}x",
        n2v.legacy.msteps_wall,
        n2v.adaptive.msteps_wall,
        n2v.speedup,
        n2v.adaptive.sampling.cache_hit_ratio() * 100.0,
        report.min_speedup(),
    );

    // The acceptance claim, checked on the spot at figure scale.
    if !smoke {
        assert!(
            n2v.speedup >= 1.5,
            "skewed weighted Node2Vec must run >=1.5x faster with the \
             second-order alias cache, measured {:.2}x",
            n2v.speedup
        );
    }
    assert!(
        n2v.adaptive.sampling.cache_hits > n2v.adaptive.sampling.alias_builds,
        "hot hub edges must be served from the cache"
    );

    let json = report.to_json();
    std::fs::write("BENCH_sampling.json", &json).expect("write BENCH_sampling.json");
    println!("wrote BENCH_sampling.json");
}
