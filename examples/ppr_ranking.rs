//! Personalized PageRank via accelerated random walks, validated against
//! exact power iteration.
//!
//! The Monte-Carlo estimator: launch many PPR walks from a source; the
//! fraction of walks terminating at `v` estimates PPR(v). This is the
//! database workload the paper motivates (personalized recommendation),
//! executed on the simulated accelerator.
//!
//! ```text
//! cargo run --release --example ppr_ranking
//! ```

use ridgewalker_suite::accel::{Accelerator, AcceleratorConfig};
use ridgewalker_suite::algo::ppr_exact::{l1_distance, personalized_pagerank};
use ridgewalker_suite::algo::{PreparedGraph, QuerySet, WalkSpec};
use ridgewalker_suite::graph::generators::RmatConfig;

fn main() {
    // An undirected community graph (no dead ends, so the walk estimator
    // matches the classic restart formulation exactly).
    let graph = RmatConfig::balanced(9, 8).seed(11).generate();
    let n = graph.vertex_count();
    let source = 7u32;
    let alpha = 0.15;

    // Exact reference by power iteration.
    let exact = personalized_pagerank(&graph, source, alpha, 200);

    // Monte-Carlo on the accelerator: 150k walks from the source (the L1
    // error over ~512 vertices shrinks as 1/sqrt(walks); 60k walks land
    // just above the 0.05 target).
    let spec = WalkSpec::Ppr {
        alpha,
        max_len: 400,
    };
    let prepared = PreparedGraph::new(graph, &spec).expect("unweighted graph");
    let queries = QuerySet::repeated(source, 150_000);
    let config = AcceleratorConfig::new().pipelines(8).seed(3);
    let report = Accelerator::new(config).run(&prepared, &spec, queries.queries());

    let mut counts = vec![0u64; n];
    for path in &report.paths {
        counts[path.last() as usize] += 1;
    }
    let estimate: Vec<f64> = counts
        .iter()
        .map(|&c| c as f64 / report.paths.len() as f64)
        .collect();

    let mut top: Vec<usize> = (0..n).collect();
    top.sort_by(|&a, &b| estimate[b].partial_cmp(&estimate[a]).unwrap());
    println!("top-10 personalized PageRank for source {source} (alpha {alpha}):");
    println!("vertex   walk-estimate   exact");
    for &v in top.iter().take(10) {
        println!("{v:>6}   {:>12.5}   {:.5}", estimate[v], exact[v]);
    }
    let d = l1_distance(&estimate, &exact);
    println!("\nL1 distance estimator vs exact: {d:.4} (150k walks)");
    println!(
        "accelerator: {:.0} MStep/s, mean walk length {:.2} (expected {:.2})",
        report.msteps_per_sec,
        report.steps as f64 / report.paths.len() as f64,
        (1.0 - alpha) / alpha
    );
    assert!(d < 0.05, "estimator should converge to the exact vector");
}
