//! Personalized PageRank via accelerated random walks, validated against
//! exact power iteration — with the walk stream folded *incrementally*
//! into a [`PprAggregator`] sink instead of materialising 150k paths.
//!
//! The Monte-Carlo estimator: launch many PPR walks from a source; the
//! fraction of walks terminating at `v` estimates PPR(v). This is the
//! database workload the paper motivates (personalized recommendation),
//! executed on the simulated accelerator behind the serving tier. The
//! aggregator keeps one count per distinct terminal plus an exact
//! incrementally-maintained top-k — memory O(vertices), not O(walks) —
//! and the ranking is available at any point of the stream.
//!
//! ```text
//! cargo run --release --example ppr_ranking
//! ```
//!
//! [`PprAggregator`]: ridgewalker_suite::sink::PprAggregator

use ridgewalker_suite::accel::{Accelerator, AcceleratorConfig};
use ridgewalker_suite::algo::ppr_exact::{l1_distance, personalized_pagerank};
use ridgewalker_suite::algo::{PreparedGraph, QuerySet, WalkSpec};
use ridgewalker_suite::graph::generators::RmatConfig;
use ridgewalker_suite::service::{accelerator_service, AccelShardMode, ServiceConfig, TenantId};
use ridgewalker_suite::sink::PprAggregator;
use std::sync::Arc;

fn main() {
    // An undirected community graph (no dead ends, so the walk estimator
    // matches the classic restart formulation exactly).
    let graph = RmatConfig::balanced(9, 8).seed(11).generate();
    let n = graph.vertex_count();
    let source = 7u32;
    let alpha = 0.15;

    // Exact reference by power iteration.
    let exact = personalized_pagerank(&graph, source, alpha, 200);

    // Monte-Carlo through the serving tier: 150k walks from the source
    // (the L1 error over ~512 vertices shrinks as 1/sqrt(walks)), folded
    // into terminal-visit counts as they complete.
    let spec = WalkSpec::Ppr {
        alpha,
        max_len: 400,
    };
    let prepared = Arc::new(PreparedGraph::new(graph, &spec).expect("unweighted graph"));
    let queries = QuerySet::repeated(source, 150_000);
    let accel = Accelerator::new(AcceleratorConfig::new().pipelines(8).seed(3));
    let mut service = accelerator_service(
        ServiceConfig::new(1)
            .max_batch(512)
            .max_delay_ticks(1)
            .buffer_capacity(200_000),
        &accel,
        prepared.clone(),
        &spec,
        AccelShardMode::Incremental,
    );

    let mut ranking = PprAggregator::new(10);
    let mut offered = queries.queries();
    while !offered.is_empty() {
        let taken = service.submit(TenantId(0), offered);
        offered = &offered[taken..];
        if taken == 0 {
            service.tick_into(&mut ranking);
        }
    }
    let total = 150_000u64;
    // Mid-stream the ranking is already live — that is the point of an
    // incremental aggregate.
    service.tick_into(&mut ranking);
    if ranking.walks() > 0 {
        let (v, _, est) = ranking.top_k()[0];
        println!(
            "mid-stream ({} of {total} walks folded): current top vertex {v} at {est:.5}",
            ranking.walks()
        );
    }
    service.drain_into(&mut ranking);
    assert_eq!(ranking.walks(), total, "every walk folded exactly once");

    println!("top-10 personalized PageRank for source {source} (alpha {alpha}):");
    println!("vertex   walk-estimate   exact");
    for (v, _count, est) in ranking.top_k() {
        println!("{v:>6}   {est:>12.5}   {:.5}", exact[v as usize]);
    }

    let estimate = ranking.estimates(n);
    let d = l1_distance(&estimate, &exact);
    println!("\nL1 distance estimator vs exact: {d:.4} ({total} walks)");
    println!(
        "aggregator footprint: {} distinct terminals (graph has {n} vertices; no path retained)",
        ranking.distinct_terminals()
    );
    let stats = service.stats();
    println!(
        "service: {} walks streamed into the sink, {:.0} MStep/s simulated, mean walk length {:.2} (expected {:.2})",
        stats.sink_accepted,
        stats.msteps_per_sec_simulated.unwrap_or(0.0),
        stats.steps as f64 / total as f64,
        (1.0 - alpha) / alpha
    );
    assert!(d < 0.05, "estimator should converge to the exact vector");
}
