//! Design-space exploration: URW throughput across FPGA platforms and
//! pipeline counts (a Table III-style sweep through the public API).
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use ridgewalker_suite::accel::{Accelerator, AcceleratorConfig};
use ridgewalker_suite::algo::{PreparedGraph, QuerySet, WalkSpec};
use ridgewalker_suite::graph::generators::{Dataset, ScaleFactor};
use ridgewalker_suite::sim::FpgaPlatform;

fn main() {
    let graph = Dataset::AsSkitter.generate(ScaleFactor::Tiny);
    let spec = WalkSpec::urw(40);
    let prepared = PreparedGraph::new(graph, &spec).expect("unweighted graph");
    let queries = QuerySet::random(prepared.graph().vertex_count(), 8_192, 1);

    println!("URW-40 on the AS stand-in, 8192 queries\n");
    println!("platform      pipelines   MStep/s   peak MStep/s   BW util   bubbles");
    for platform in FpgaPlatform::all() {
        let spec_hw = platform.spec();
        let n = spec_hw.pipelines();
        let report = Accelerator::new(AcceleratorConfig::new().platform(platform)).run(
            &prepared,
            &spec,
            queries.queries(),
        );
        println!(
            "{:<12}  {:>9}  {:>8.0}  {:>13.0}  {:>7.1}%  {:>6.1}%",
            spec_hw.name,
            n,
            report.msteps_per_sec,
            spec_hw.peak_msteps(2.0),
            100.0 * report.bandwidth_utilization,
            100.0 * report.bubble_ratio,
        );
    }

    println!("\npipeline scaling on the U55C (same workload):");
    println!("pipelines   MStep/s   steps/cycle");
    for n in [2u32, 4, 8, 16] {
        let report = Accelerator::new(AcceleratorConfig::new().pipelines(n)).run(
            &prepared,
            &spec,
            queries.queries(),
        );
        println!(
            "{n:>9}  {:>8.0}  {:>11.2}",
            report.msteps_per_sec,
            report.steps as f64 / report.cycles as f64
        );
    }
}
