//! SLO-driven elastic fleet scaling vs static provisioning.
//!
//! Replays a diurnal multi-tenant stream with MMPP-2 bursts riding the
//! envelope through three provisioning arms sharing common random
//! numbers: an autoscaled fleet (starts at `min_shards`, a `TargetSlo`
//! policy grows and shrinks the live `WalkService` through the router's
//! append/drain-retire path), a static over-provisioned fleet
//! (`max_shards` throughout), and a static under-provisioned fleet
//! (`min_shards` throughout). Reports per-arm p99 latency and
//! fleet-ticks (the cost proxy: one unit per live shard per tick), and
//! writes `BENCH_autoscale.json` for the CI perf-regression gate plus
//! the autoscaled arm's observability artifacts: `OBS_autoscale.json`
//! (unified metrics snapshot) and `TRACE_autoscale.jsonl` (the
//! deterministic event journal — render it with `obsdump`).
//!
//! The run asserts the tentpole claim on the spot: the autoscaled arm
//! must hold the p99 SLO at strictly fewer fleet-ticks than static
//! over-provisioning.
//!
//! ```text
//! cargo run --release --example autoscale                    # figure scale
//! AUTOSCALE_SMOKE=1 cargo run --release --example autoscale  # CI smoke
//! ```

use ridgewalker_suite::bench::autoscale::{run_autoscale_bench, AutoscaleBenchConfig};

fn main() {
    let smoke =
        std::env::var_os("AUTOSCALE_SMOKE").is_some() || std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        AutoscaleBenchConfig::smoke()
    } else {
        AutoscaleBenchConfig::full()
    };

    println!(
        "autoscale bench ({} mode): {}..{} shards, {} tenants, {} queries, rho {:.2}, {:.1} diurnal cycles, {} bursts\n",
        if smoke { "smoke" } else { "full" },
        cfg.min_shards,
        cfg.max_shards,
        cfg.tenants,
        cfg.queries,
        cfg.rho,
        cfg.diurnal_cycles,
        cfg.arrival.name(),
    );

    let report = run_autoscale_bench(&cfg);

    println!(
        "calibration: {:.3} q/tick/shard, SLO target {:.1} ticks, lambda mid {:.3} q/tick",
        report.shard_qpt, report.slo_target_ticks, report.lambda_mid
    );
    println!(
        "   {:<14} {:>8} {:>12} {:>7} {:>5} {:>5} {:>5} {:>10} {:>8} {:>8} {:>8} {:>5}",
        "arm",
        "ticks",
        "fleet-ticks",
        "shards",
        "peak",
        "ups",
        "downs",
        "mean",
        "p50",
        "p99",
        "max",
        "slo"
    );
    for a in &report.arms {
        println!(
            "   {:<14} {:>8} {:>12} {:>7.2} {:>5} {:>5} {:>5} {:>10.1} {:>8} {:>8} {:>8} {:>5}",
            a.arm,
            a.ticks,
            a.fleet_ticks,
            a.mean_shards,
            a.peak_shards,
            a.scale_ups,
            a.scale_downs,
            a.mean_latency_ticks,
            a.p50_latency_ticks,
            a.p99_latency_ticks,
            a.max_latency_ticks,
            if a.slo_held { "yes" } else { "NO" },
        );
    }

    let auto = report.arm("autoscaled").expect("autoscaled arm ran");
    let over = report.arm("static-over").expect("static-over arm ran");
    let under = report.arm("static-under").expect("static-under arm ran");
    println!(
        "\ncost: autoscaled {} vs static-over {} fleet-ticks ({:.2}x cheaper) at p99 {} <= SLO {:.1}",
        auto.fleet_ticks,
        over.fleet_ticks,
        over.fleet_ticks as f64 / auto.fleet_ticks.max(1) as f64,
        auto.p99_latency_ticks,
        report.slo_target_ticks,
    );

    // The acceptance claims, checked on the spot.
    assert_eq!(auto.completed, cfg.queries, "conservation: autoscaled");
    assert_eq!(over.completed, cfg.queries, "conservation: static-over");
    assert_eq!(under.completed, cfg.queries, "conservation: static-under");
    assert!(
        auto.slo_held,
        "autoscaled p99 {} must meet the SLO target {:.1}",
        auto.p99_latency_ticks, report.slo_target_ticks
    );
    assert!(
        auto.fleet_ticks < over.fleet_ticks,
        "autoscaled fleet-ticks {} must undercut static-over {}",
        auto.fleet_ticks,
        over.fleet_ticks
    );
    assert!(
        !under.slo_held,
        "static-under p99 {} should breach the SLO {:.1}",
        under.p99_latency_ticks, report.slo_target_ticks
    );

    let json = report.to_json();
    std::fs::write("BENCH_autoscale.json", &json).expect("write BENCH_autoscale.json");
    // The observability artifacts of the autoscaled arm: the unified
    // metrics snapshot and the deterministic event journal. The trace
    // renders to a markdown timeline with
    // `cargo run --release -p grw_obs --bin obsdump -- TRACE_autoscale.jsonl`.
    std::fs::write("OBS_autoscale.json", &report.metrics_snapshot)
        .expect("write OBS_autoscale.json");
    std::fs::write("TRACE_autoscale.jsonl", &report.trace_jsonl)
        .expect("write TRACE_autoscale.jsonl");
    println!(
        "wrote BENCH_autoscale.json, OBS_autoscale.json, TRACE_autoscale.jsonl ({} events)",
        report.trace_jsonl.lines().count()
    );
}
