//! Wall-clock QPS: deterministic tick loop vs thread-per-shard driver.
//!
//! Replays one open-loop arrival stream against the identical CPU shard
//! fleet under both execution regimes and reports wall-clock QPS,
//! submit→harvest latency percentiles, and the cross-regime walk-multiset
//! digest (which must match — same seeds, same walks, different
//! schedulers). Writes `BENCH_qps.json`; CI gates only the deterministic
//! counters, never the wall-clock numbers.
//!
//! ```text
//! cargo run --release --example qps               # figure scale
//! QPS_SMOKE=1 cargo run --release --example qps   # CI smoke
//! ```

use ridgewalker_suite::bench::qps::{run_qps_bench, QpsConfig};

fn main() {
    let smoke = std::env::var_os("QPS_SMOKE").is_some() || std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        QpsConfig::smoke()
    } else {
        QpsConfig::full()
    };

    println!(
        "driver QPS bench ({} mode): {} queries, walk_len {}, {} shards, {} arrival\n",
        if smoke { "smoke" } else { "full" },
        cfg.queries,
        cfg.walk_len,
        cfg.shards,
        cfg.arrival.name(),
    );

    let report = run_qps_bench(&cfg);

    for d in [&report.deterministic, &report.threaded] {
        println!(
            "  {:?}: {:.0} walks/s wall ({:.3}s, {} ticks), latency p50 {}us p99 {}us max {}us",
            d.mode,
            d.qps_wall,
            d.wall_seconds,
            d.ticks,
            d.p50_latency_us,
            d.p99_latency_us,
            d.max_latency_us,
        );
    }
    println!(
        "\n  walk multisets match: digest {} | {} walks | {} steps (both regimes)",
        report.deterministic.walk_digest,
        report.deterministic.completed,
        report.deterministic.steps
    );
    println!(
        "  threaded speedup: {:.2}x wall on {} available core(s)\n",
        report.speedup_wall(),
        report.parallelism
    );

    // The acceptance claims, checked on the spot. Determinism holds on
    // any machine; the speedup claim needs real cores to stand on — a
    // single-core CI runner serializes the worker threads and would only
    // be measuring context-switch overhead.
    assert!(
        report.checksum_match(),
        "both regimes must complete the identical walk multiset"
    );
    if report.parallelism >= 4 {
        assert!(
            report.speedup_wall() >= 2.0,
            "with {} cores and {} shards the threaded driver should be >=2x wall QPS, got {:.2}x",
            report.parallelism,
            report.config.shards,
            report.speedup_wall(),
        );
    } else {
        println!(
            "  (speedup assertion skipped: only {} core(s) available)",
            report.parallelism
        );
    }

    std::fs::write(report.file_name(), report.to_json()).expect("write bench json");
    println!("wrote {}", report.file_name());
}
