//! Serving quickstart: a sharded, multi-tenant walk service under a
//! 10k-query mixed-tenant workload.
//!
//! Three tenants (a PPR-style recommender, an embedding-corpus builder
//! and an ad-hoc analytics client) stream queries into one `WalkService`
//! backed by four `ParallelEngine` shards over a shared prepared graph.
//! Queries coalesce into size/deadline-bounded micro-batches, results
//! route back to the tenant that asked, and the service prints its
//! `ServiceStats` at the end.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use ridgewalker_suite::algo::{ParallelBackend, PreparedGraph, QuerySet, WalkSpec};
use ridgewalker_suite::graph::generators::{Dataset, ScaleFactor};
use ridgewalker_suite::service::{ServiceConfig, TenantId, WalkService};
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    let graph = Dataset::WebGoogle.generate(ScaleFactor::Tiny);
    let spec = WalkSpec::urw(20);
    let vertex_count = graph.vertex_count();
    let prepared = Arc::new(PreparedGraph::new(graph, &spec).expect("unweighted graph"));
    println!(
        "graph: {} vertices, {} edges",
        vertex_count,
        prepared.graph().edge_count()
    );

    // Four shards, each a 2-thread in-memory walker over the shared graph.
    let cfg = ServiceConfig::new(4).max_batch(128).max_delay_ticks(2);
    let backend_graph = prepared.clone();
    let backend_spec = spec.clone();
    let mut service = WalkService::new(cfg, move |shard| {
        ParallelBackend::new(
            backend_graph.clone(),
            backend_spec.clone(),
            0x5EED ^ shard as u64,
            2,
        )
    });

    // A mixed-tenant workload: 10k queries across three tenants, arriving
    // interleaved in waves like traffic at a serving front-end.
    let tenants = [
        (TenantId(1), QuerySet::random(vertex_count, 5_000, 11)),
        (TenantId(2), QuerySet::random(vertex_count, 3_000, 22)),
        (TenantId(3), QuerySet::random(vertex_count, 2_000, 33)),
    ];
    let mut offsets = [0usize; 3];
    let mut delivered: HashMap<TenantId, u64> = HashMap::new();
    let wave = 256;

    loop {
        let mut any = false;
        for (i, (tenant, qs)) in tenants.iter().enumerate() {
            let queries = qs.queries();
            if offsets[i] >= queries.len() {
                continue;
            }
            let end = (offsets[i] + wave).min(queries.len());
            let mut part = &queries[offsets[i]..end];
            while !part.is_empty() {
                let taken = service.submit(*tenant, part);
                part = &part[taken..];
                if taken == 0 {
                    // Backpressure: let the service work a tick.
                    for walk in service.tick() {
                        *delivered.entry(walk.tenant).or_default() += 1;
                    }
                }
            }
            offsets[i] = end;
            any = true;
        }
        for walk in service.tick() {
            *delivered.entry(walk.tenant).or_default() += 1;
        }
        if !any {
            break;
        }
    }
    for walk in service.drain() {
        *delivered.entry(walk.tenant).or_default() += 1;
    }

    println!("\ndeliveries per tenant:");
    let mut tenants_seen: Vec<_> = delivered.iter().collect();
    tenants_seen.sort();
    for (tenant, count) in tenants_seen {
        println!("  {tenant}: {count} walks");
    }
    let expected: u64 = tenants.iter().map(|(_, qs)| qs.len() as u64).sum();
    let got: u64 = delivered.values().sum();
    assert_eq!(got, expected, "every query answered exactly once");

    println!("\n{}", service.stats());
}
