//! Accelerator-shard serving benchmark: batch vs incremental execution.
//!
//! Serves the identical open-loop query stream through a sharded
//! `WalkService` twice — once over micro-batch `AcceleratorBackend`
//! shards (one detached cycle simulation per poll, fill/drain per batch)
//! and once over `IncrementalAcceleratorBackend` shards (queries join one
//! persistent running machine) — then reports MStep/s in wall and
//! simulated time plus the pipeline bubble ratio for each, and writes the
//! comparison to `BENCH_serving.json` for the perf-trajectory recorder.
//!
//! ```text
//! cargo run --release --example serving_accel            # figure scale
//! SERVING_SMOKE=1 cargo run --release --example serving_accel   # CI smoke
//! ```

use ridgewalker_suite::bench::serving::{run_serving_comparison, ModeReport, ServingWorkload};

fn print_mode(name: &str, m: &ModeReport) {
    println!("{name}:");
    println!("  completed walks      : {}", m.completed);
    println!("  steps                : {}", m.steps);
    println!("  MStep/s (wall)       : {:.2}", m.msteps_wall);
    println!("  MStep/s (simulated)  : {:.1}", m.msteps_simulated);
    println!("  simulated cycles     : {}", m.simulated_cycles);
    println!("  bubble ratio         : {:.4}", m.bubble_ratio);
    println!("  pipeline utilization : {:.4}", m.utilization);
    println!(
        "  p99 batch latency    : {} ticks",
        m.p99_batch_latency_ticks
    );
}

fn main() {
    let smoke =
        std::env::var_os("SERVING_SMOKE").is_some() || std::env::args().any(|a| a == "--smoke");
    let workload = if smoke {
        ServingWorkload::smoke()
    } else {
        ServingWorkload::figure()
    };
    println!(
        "serving {} queries (walk_len {}, {} arrivals/tick) over {} shards x {} pipelines\n",
        workload.queries,
        workload.walk_len,
        workload.arrivals_per_tick,
        workload.shards,
        workload.pipelines
    );

    let cmp = run_serving_comparison(workload);
    print_mode("batch shards (micro-batch per poll)", &cmp.batch);
    println!();
    print_mode(
        "incremental shards (queries join the running machine)",
        &cmp.incremental,
    );
    println!();
    println!(
        "incremental vs batch: {:.2}x simulated MStep/s, {:.2}x fewer bubbles",
        cmp.incremental.msteps_simulated / cmp.batch.msteps_simulated.max(1e-9),
        cmp.bubble_improvement()
    );
    assert!(
        cmp.incremental.bubble_ratio < cmp.batch.bubble_ratio,
        "incremental mode must keep the pipeline fuller under sustained load"
    );

    let path = "BENCH_serving.json";
    std::fs::write(path, cmp.to_json()).expect("write bench json");
    println!("\nwrote {path}");
}
