//! Adaptive routing on a mixed accelerator/CPU fleet.
//!
//! Builds a heterogeneous `WalkService` (incremental accelerator shards
//! plus deliberately slower CPU shards), calibrates each backend class's
//! saturation rate μ̂, and replays the identical bursty (MMPP-2)
//! open-loop multi-tenant stream through a `grw_route::Router` under
//! three placement policies — static vertex hash (today's behaviour),
//! rate-weighted join-shortest-queue, and the cost-based adaptive policy
//! with hysteresis. Reports per-policy p99 latency, migrations and the
//! accel/CPU routing split per workload, and writes `BENCH_routing.json`
//! for the CI perf-regression gate.
//!
//! The run asserts the tentpole claim on the spot: at equal offered
//! load, adaptive placement must deliver a lower worst-case p99 than
//! static hashing on the mixed fleet.
//!
//! ```text
//! cargo run --release --example routing                    # figure scale
//! ROUTING_SMOKE=1 cargo run --release --example routing    # CI smoke
//! ```

use ridgewalker_suite::bench::routing::{run_routing_bench, RoutingBenchConfig};

fn main() {
    let smoke =
        std::env::var_os("ROUTING_SMOKE").is_some() || std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        RoutingBenchConfig::smoke()
    } else {
        RoutingBenchConfig::full()
    };

    println!(
        "routing bench ({} mode): {}x accel + {}x cpu shards, {} tenants, {} queries, rho {:.2}, {} arrivals\n",
        if smoke { "smoke" } else { "full" },
        cfg.accel_shards,
        cfg.cpu_shards,
        cfg.tenants,
        cfg.queries,
        cfg.rho,
        cfg.arrival.name(),
    );

    let report = run_routing_bench(&cfg);

    for w in &report.workloads {
        println!(
            "== {} ==  accel {:.3} q/tick/shard, cpu {:.3} q/tick/shard, lambda {:.3} q/tick",
            w.workload, w.accel_qpt, w.cpu_qpt, w.lambda_per_tick
        );
        println!(
            "   {:<14} {:>8} {:>10} {:>8} {:>8} {:>8} {:>11} {:>9} {:>9}",
            "policy", "ticks", "mean", "p50", "p99", "max", "migrations", "->accel", "->cpu"
        );
        for o in &w.outcomes {
            println!(
                "   {:<14} {:>8} {:>10.1} {:>8} {:>8} {:>8} {:>11} {:>9} {:>9}",
                o.policy,
                o.ticks,
                o.mean_latency_ticks,
                o.p50_latency_ticks,
                o.p99_latency_ticks,
                o.max_latency_ticks,
                o.migrations,
                o.routed_accel,
                o.routed_cpu,
            );
        }
        let stat = w.outcome("static-hash").expect("baseline ran");
        let adapt = w.outcome("adaptive").expect("adaptive ran");
        println!(
            "   p99: static {} vs adaptive {} ticks ({:.2}x)\n",
            stat.p99_latency_ticks,
            adapt.p99_latency_ticks,
            stat.p99_latency_ticks as f64 / adapt.p99_latency_ticks.max(1) as f64
        );
        // The acceptance claim, checked per workload on the spot.
        assert!(
            adapt.p99_latency_ticks < stat.p99_latency_ticks,
            "{}: adaptive p99 {} must beat static {} at equal offered load",
            w.workload,
            adapt.p99_latency_ticks,
            stat.p99_latency_ticks
        );
        assert_eq!(adapt.completed, cfg.queries, "conservation");
        assert_eq!(stat.completed, cfg.queries, "conservation");
    }

    println!(
        "matrix worst-case p99: static {} vs adaptive {} ticks ({:.2}x), {} adaptive migrations",
        report.worst_p99("static-hash"),
        report.worst_p99("adaptive"),
        report.worst_p99("static-hash") as f64 / report.worst_p99("adaptive").max(1) as f64,
        report.total_migrations("adaptive"),
    );

    let json = report.to_json();
    std::fs::write("BENCH_routing.json", &json).expect("write BENCH_routing.json");
    println!("wrote BENCH_routing.json");
}
