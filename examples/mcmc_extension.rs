//! Beyond GRWs: Metropolis–Hastings sampling on a graph — the paper's
//! discussion (§IX) argues the perfect-pipelining strategy generalizes to
//! MCMC workloads, whose runtime dependencies and random-access latency
//! look exactly like GRW hops.
//!
//! This example builds an MH chain over graph vertices targeting the
//! stationary distribution π(v) ∝ deg(v)^β using the suite's substrate
//! (CSR graph, uniform proposals, multi-stream RNG), and checks the
//! empirical distribution against the target. Each MH step is the same
//! stateless tuple shape the accelerator executes: ⟨v_curr, chain id,
//! step⟩ plus counter-based randomness.
//!
//! ```text
//! cargo run --release --example mcmc_extension
//! ```

use ridgewalker_suite::graph::generators::RmatConfig;
use ridgewalker_suite::graph::CsrGraph;
use ridgewalker_suite::rng::{Philox4x32, RandomSource};

/// One Metropolis–Hastings hop with uniform neighbor proposals.
///
/// Proposal: uniform over N(cur); acceptance for target π(v) ∝ deg(v)^β
/// with uniform proposals q(v|u) = 1/deg(u):
/// `a = min(1, (deg(v)^β · deg(v)⁻¹·…))` — the Hastings correction makes
/// the ratio `(deg(v)/deg(u))^(β-1)`.
fn mh_step<G: RandomSource>(graph: &CsrGraph, cur: u32, beta: f64, rng: &mut G) -> u32 {
    let deg_u = graph.degree(cur);
    if deg_u == 0 {
        return cur;
    }
    let idx = rng.next_below(u64::from(deg_u)) as usize;
    let cand = graph.neighbors(cur)[idx];
    let deg_v = graph.degree(cand).max(1);
    let ratio = (f64::from(deg_v) / f64::from(deg_u)).powf(beta - 1.0);
    if rng.next_f64() < ratio.min(1.0) {
        cand
    } else {
        cur
    }
}

fn main() {
    // Connected undirected graph (MH needs reversible proposals).
    let graph = RmatConfig::balanced(9, 10).seed(5).generate();
    let n = graph.vertex_count();
    let beta = 2.0; // sample vertices proportional to squared degree

    // Many independent chains = many concurrent "queries", exactly the
    // parallelism the accelerator exploits. Counter-based RNG keyed by
    // (chain, step) keeps every step stateless.
    let chains = 512usize;
    let burn_in = 400u64;
    let samples_per_chain = 2_000u64;

    let mut counts = vec![0u64; n];
    for chain in 0..chains as u64 {
        let mut cur = (chain as u32 * 2_654_435_761) % n as u32;
        for step in 0..burn_in + samples_per_chain {
            let mut rng = Philox4x32::keyed(chain, step);
            cur = mh_step(&graph, cur, beta, &mut rng);
            if step >= burn_in {
                counts[cur as usize] += 1;
            }
        }
    }

    // Compare empirical vs target distribution.
    let target: Vec<f64> = (0..n as u32)
        .map(|v| f64::from(graph.degree(v)).powf(beta))
        .collect();
    let z: f64 = target.iter().sum();
    let total: u64 = counts.iter().sum();
    let l1: f64 = counts
        .iter()
        .zip(&target)
        .map(|(&c, &t)| (c as f64 / total as f64 - t / z).abs())
        .sum();

    let mut top: Vec<usize> = (0..n).collect();
    top.sort_by_key(|&v| std::cmp::Reverse(counts[v]));
    println!("Metropolis-Hastings over {} vertices, beta = {beta}", n);
    println!("vertex   empirical   target    degree");
    for &v in top.iter().take(8) {
        println!(
            "{v:>6}   {:>9.5}   {:.5}   {:>6}",
            counts[v] as f64 / total as f64,
            target[v] / z,
            graph.degree(v as u32)
        );
    }
    println!("\nL1 distance empirical vs target: {l1:.4}");
    println!(
        "({} chains x {} samples, stateless counter-based steps)",
        chains, samples_per_chain
    );
    assert!(l1 < 0.15, "MH chain failed to converge (L1 = {l1:.3})");
}
